"""Shared factories for the test suite."""

import math

import pytest

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point


def make_task(
    task_id: int = 0,
    x: float = 0.5,
    y: float = 0.5,
    start: float = 0.0,
    end: float = 10.0,
    beta: float = 0.5,
) -> SpatialTask:
    """A task with innocuous defaults."""
    return SpatialTask(task_id, Point(x, y), start, end, beta)


def make_worker(
    worker_id: int = 0,
    x: float = 0.0,
    y: float = 0.0,
    velocity: float = 1.0,
    cone: AngleInterval = None,
    confidence: float = 0.9,
    depart_time: float = 0.0,
) -> MovingWorker:
    """A worker with innocuous defaults (full-circle cone)."""
    return MovingWorker(
        worker_id,
        Point(x, y),
        velocity,
        cone if cone is not None else AngleInterval.full_circle(),
        confidence,
        depart_time,
    )


@pytest.fixture
def task_factory():
    return make_task


@pytest.fixture
def worker_factory():
    return make_worker
