"""Smoke tests for the ablation studies (full runs live in benchmarks/)."""

import pytest

from repro.experiments.ablations import (
    AblationRow,
    baseline_comparison,
    format_ablation,
    gamma_ablation,
    pruning_ablation,
    sampling_budget_ablation,
)


class TestAblationStudies:
    def test_pruning_rows(self):
        rows = pruning_ablation(seeds=(1,))
        assert [r.label for r in rows] == ["pruning ON", "pruning OFF"]
        assert rows[0].extra <= rows[1].extra

    def test_gamma_rows(self):
        rows = gamma_ablation(gammas=(4, 16), seeds=(1,))
        assert [r.label for r in rows] == ["gamma=4", "gamma=16"]
        assert rows[0].extra >= rows[1].extra

    def test_sampling_budget_rows(self):
        rows = sampling_budget_ablation(budgets=(5, 40), seeds=(1,))
        assert rows[0].label == "K=5"
        assert rows[1].extra == 40.0

    def test_baseline_rows(self):
        rows = baseline_comparison(seeds=(1,))
        labels = [r.label for r in rows]
        assert "MAX-TASK" in labels and "RANDOM" in labels

    def test_format(self):
        rows = [AblationRow("x", 0.9, 1.5, 0.01, 3.0)]
        text = format_ablation("Title", rows, extra_name="count")
        assert "Title" in text and "count" in text and "0.9000" in text
