"""Tests for the divide-and-conquer solver (Figure 6) and G-TRUTH."""

import pytest

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    GroundTruthSolver,
    SamplingSolver,
)
from repro.core.objectives import evaluate_assignment
from repro.datagen import ExperimentConfig, generate_problem


def problem_of(m, n, seed):
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n), seed
    )


class TestDivideConquer:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            DivideConquerSolver(gamma=0)

    def test_small_problem_single_leaf(self):
        problem = problem_of(6, 12, 3)
        solver = DivideConquerSolver(gamma=10)
        result = solver.solve(problem, rng=1)
        assert result.stats["leaf_solves"] == 1.0
        assert result.stats["max_depth"] == 0.0

    def test_large_problem_recurses(self):
        problem = problem_of(40, 60, 5)
        solver = DivideConquerSolver(gamma=8)
        result = solver.solve(problem, rng=1)
        assert result.stats["leaf_solves"] >= 4.0
        assert result.stats["max_depth"] >= 2.0

    def test_every_connected_worker_assigned_once(self):
        problem = problem_of(30, 50, 7)
        result = DivideConquerSolver(gamma=6).solve(problem, rng=2)
        seen = set()
        for task_id, worker_id in result.assignment.pairs():
            assert worker_id not in seen
            seen.add(worker_id)
            assert problem.is_valid_pair(task_id, worker_id)
        connected = {
            w.worker_id for w in problem.workers if problem.degree(w.worker_id) > 0
        }
        assert seen == connected

    def test_objective_matches_reevaluation(self):
        problem = problem_of(24, 40, 9)
        result = DivideConquerSolver(gamma=6).solve(problem, rng=3)
        fresh = evaluate_assignment(problem, result.assignment)
        assert result.objective.total_std == pytest.approx(fresh.total_std)
        assert result.objective.min_reliability == pytest.approx(fresh.min_reliability)

    def test_deterministic_given_seed(self):
        problem = problem_of(24, 40, 11)
        a = DivideConquerSolver(gamma=6).solve(problem, rng=5)
        b = DivideConquerSolver(gamma=6).solve(problem, rng=5)
        assert a.assignment == b.assignment

    def test_custom_base_solver(self):
        problem = problem_of(20, 30, 13)
        solver = DivideConquerSolver(gamma=5, base_solver=GreedySolver())
        result = solver.solve(problem, rng=1)
        assert len(result.assignment) > 0

    def test_quality_beats_greedy_on_small_m(self):
        # The paper's recurring observation at small m (Figures 13/23).
        wins = 0
        for seed in (1, 2, 3, 4, 5):
            problem = problem_of(16, 48, seed)
            dc = DivideConquerSolver(gamma=6, base_solver=SamplingSolver(num_samples=50))
            greedy = GreedySolver()
            dc_std = dc.solve(problem, rng=seed).objective.total_std
            greedy_std = greedy.solve(problem, rng=seed).objective.total_std
            wins += dc_std > greedy_std
        assert wins >= 4


class TestGroundTruth:
    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            GroundTruthSolver(multiplier=0)

    def test_stats_record_multiplier(self):
        problem = problem_of(12, 20, 15)
        result = GroundTruthSolver(gamma=6, multiplier=10).solve(problem, rng=1)
        assert result.stats["sample_multiplier"] == 10.0

    def test_not_dominated_by_dc_on_average(self):
        total_dc = 0.0
        total_gt = 0.0
        for seed in (1, 2, 3):
            problem = problem_of(16, 32, seed)
            dc = DivideConquerSolver(
                gamma=6, base_solver=SamplingSolver(num_samples=20)
            ).solve(problem, rng=seed)
            gt = GroundTruthSolver(gamma=6, multiplier=10).solve(problem, rng=seed)
            total_dc += dc.objective.total_std
            total_gt += gt.objective.total_std
        assert total_gt >= 0.9 * total_dc
