"""The exhaustive oracle, and approximation-quality checks against it."""

import pytest

from repro.algorithms import (
    DivideConquerSolver,
    ExhaustiveSolver,
    GreedySolver,
    SamplingSolver,
)
from repro.algorithms.exhaustive import population_size
from repro.core.objectives import dominates
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_problem
from tests.conftest import make_task, make_worker


def tiny_problem(seed, m=4, n=7):
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n), seed
    )


class TestPopulationSize:
    def test_counts_product_of_degrees(self):
        problem = tiny_problem(1)
        expected = 1
        for worker in problem.workers:
            deg = problem.degree(worker.worker_id)
            if deg:
                expected *= deg
        assert population_size(problem) == expected

    def test_refuses_huge(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=40, num_workers=60), 2
        )
        with pytest.raises(OverflowError):
            population_size(problem)


class TestExhaustive:
    def test_empty_problem(self):
        result = ExhaustiveSolver().solve(RdbscProblem([], []))
        assert len(result.assignment) == 0

    def test_single_choice_instance(self):
        tasks = [make_task(0, x=0.5, y=0.5)]
        workers = [make_worker(0, x=0.4, y=0.5, velocity=0.5)]
        problem = RdbscProblem(tasks, workers)
        result = ExhaustiveSolver().solve(problem)
        assert result.assignment.task_of(0) == 0

    def test_winner_undominated_in_population(self):
        problem = tiny_problem(3)
        solver = ExhaustiveSolver()
        best = solver.solve(problem)
        for candidate in solver.pareto_front(problem):
            assert not dominates(candidate.objective, best.objective)

    def test_pareto_front_members_mutually_undominated(self):
        problem = tiny_problem(5)
        front = ExhaustiveSolver().pareto_front(problem)
        for a in front:
            for b in front:
                assert not dominates(a.objective, b.objective)


class TestApproximationQuality:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_no_solver_beats_pareto_front(self, seed):
        # Approximation results can never dominate an exhaustive Pareto
        # point — sanity that our objective evaluation is consistent.
        problem = tiny_problem(seed)
        front = ExhaustiveSolver().pareto_front(problem)
        for solver in (
            GreedySolver(),
            SamplingSolver(num_samples=40),
            DivideConquerSolver(gamma=3, base_solver=SamplingSolver(num_samples=20)),
        ):
            result = solver.solve(problem, rng=seed)
            for point in front:
                assert not dominates(result.objective, point.objective)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_solvers_land_reasonably_close_to_front(self, seed):
        problem = tiny_problem(seed, m=3, n=6)
        best_std = max(
            r.objective.total_std for r in ExhaustiveSolver().pareto_front(problem)
        )
        if best_std <= 0.0:
            pytest.skip("degenerate instance with no diversity at all")
        for solver in (GreedySolver(), SamplingSolver(num_samples=80)):
            achieved = solver.solve(problem, rng=seed).objective.total_std
            assert achieved >= 0.5 * best_std
