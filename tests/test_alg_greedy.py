"""Tests for the RDB-SC greedy solver (Figure 3)."""

import pytest

from repro.algorithms import GreedySolver
from repro.core.problem import RdbscProblem
from repro.core.objectives import evaluate_assignment
from repro.datagen import ExperimentConfig, generate_problem
from tests.conftest import make_task, make_worker


def dense_problem(seed=3, m=12, n=24):
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n), seed
    )


class TestGreedyBasics:
    def test_assigns_every_connected_worker(self):
        problem = dense_problem()
        result = GreedySolver().solve(problem)
        connected = [
            w.worker_id for w in problem.workers if problem.degree(w.worker_id) > 0
        ]
        for worker_id in connected:
            assert result.assignment.task_of(worker_id) is not None

    def test_respects_validity(self):
        problem = dense_problem(5)
        result = GreedySolver().solve(problem)
        for task_id, worker_id in result.assignment.pairs():
            assert problem.is_valid_pair(task_id, worker_id)

    def test_objective_matches_reevaluation(self):
        problem = dense_problem(7)
        result = GreedySolver().solve(problem)
        fresh = evaluate_assignment(problem, result.assignment)
        assert result.objective.min_reliability == pytest.approx(fresh.min_reliability)
        assert result.objective.total_std == pytest.approx(fresh.total_std)

    def test_deterministic(self):
        problem = dense_problem(9)
        a = GreedySolver().solve(problem)
        b = GreedySolver().solve(problem)
        assert a.assignment == b.assignment

    def test_empty_problem(self):
        problem = RdbscProblem([], [])
        result = GreedySolver().solve(problem)
        assert len(result.assignment) == 0
        assert result.objective.min_reliability == 0.0

    def test_no_valid_pairs(self):
        # Worker too slow to reach anything in time.
        tasks = [make_task(0, x=0.9, y=0.9, start=0.0, end=0.001)]
        workers = [make_worker(0, x=0.1, y=0.1, velocity=0.01)]
        problem = RdbscProblem(tasks, workers)
        result = GreedySolver().solve(problem)
        assert len(result.assignment) == 0

    def test_stats_populated(self):
        problem = dense_problem(11)
        result = GreedySolver().solve(problem)
        assert result.stats["rounds"] == len(result.assignment)
        assert result.stats["exact_delta_evaluations"] >= 0


class TestPruningEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_pruned_quality_stays_close(self, seed):
        # Lemma 4.3 pruning discards only dominated candidates, but the
        # dominating-count *ranking* is then computed over the survivors
        # (exact values for pruned pairs are never produced — that is the
        # point of pruning), so the selected pairs can differ.  The paper's
        # design accepts that; we pin the quality cost to a modest band.
        problem = dense_problem(seed)
        pruned = GreedySolver(use_pruning=True).solve(problem)
        plain = GreedySolver(use_pruning=False).solve(problem)
        assert pruned.objective.total_std >= 0.7 * plain.objective.total_std
        assert pruned.objective.min_reliability >= 0.9 * plain.objective.min_reliability

    def test_pruning_reduces_exact_evaluations(self):
        problem = dense_problem(13, m=16, n=48)
        pruned = GreedySolver(use_pruning=True).solve(problem)
        plain = GreedySolver(use_pruning=False).solve(problem)
        assert (
            pruned.stats["exact_delta_evaluations"]
            <= plain.stats["exact_delta_evaluations"]
        )


class TestGreedyKnownInstance:
    def test_prefers_high_confidence_on_single_task(self):
        # One task, two workers: greedy must assign both (rounds = workers).
        task = make_task(0, x=0.5, y=0.5, start=0.0, end=10.0)
        workers = [
            make_worker(0, x=0.1, y=0.5, velocity=0.2, confidence=0.9),
            make_worker(1, x=0.9, y=0.5, velocity=0.2, confidence=0.6),
        ]
        problem = RdbscProblem([task], workers)
        result = GreedySolver().solve(problem)
        assert result.assignment.workers_for(0) == frozenset({0, 1})
        assert result.objective.min_reliability == pytest.approx(1 - 0.1 * 0.4)
