"""Tests for the MAX-TASK (GeoCrowd-style) baseline."""

import pytest

from repro.algorithms.max_task import MaxTaskSolver, maximum_task_matching
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_problem
from tests.conftest import make_task, make_worker


def dense_problem(seed=3, m=14, n=20):
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n), seed
    )


class TestMatching:
    def test_perfect_matching_on_disjoint_pairs(self):
        tasks = [make_task(i, x=0.1 + 0.2 * i, y=0.5) for i in range(4)]
        workers = [
            make_worker(i, x=0.1 + 0.2 * i, y=0.45, velocity=0.05) for i in range(4)
        ]
        problem = RdbscProblem(tasks, workers)
        matching = maximum_task_matching(problem)
        assert len(matching) == 4
        assert sorted(matching.values()) == [0, 1, 2, 3]

    def test_augmenting_path_needed(self):
        # Worker 0 can do tasks {0, 1}; worker 1 only task 0.  A greedy
        # first-fit would strand worker 1; augmentation must not.
        tasks = [
            make_task(0, x=0.3, y=0.5, start=0.0, end=10.0),
            make_task(1, x=0.7, y=0.5, start=0.0, end=10.0),
        ]
        workers = [
            make_worker(0, x=0.5, y=0.5, velocity=1.0),          # both
            make_worker(1, x=0.3, y=0.45, velocity=0.02),        # task 0 only
        ]
        problem = RdbscProblem(tasks, workers)
        matching = maximum_task_matching(problem)
        assert len(matching) == 2
        assert matching[1] == 0
        assert matching[0] == 1

    def test_matching_is_valid_and_injective(self):
        problem = dense_problem(7)
        matching = maximum_task_matching(problem)
        assert len(set(matching.values())) == len(matching)
        for worker_id, task_id in matching.items():
            assert problem.is_valid_pair(task_id, worker_id)

    def test_matching_maximal(self):
        # No free worker may still have a free candidate task.
        problem = dense_problem(9)
        matching = maximum_task_matching(problem)
        used_tasks = set(matching.values())
        for worker in problem.workers:
            if worker.worker_id in matching:
                continue
            free_candidates = set(problem.candidate_tasks(worker.worker_id)) - used_tasks
            assert not free_candidates


class TestMaxTaskSolver:
    def test_covers_at_least_as_many_tasks_as_rdbsc_solvers(self):
        from repro.algorithms import GreedySolver, SamplingSolver

        problem = dense_problem(11)
        max_task = MaxTaskSolver().solve(problem)
        covered = len(max_task.assignment.assigned_tasks())
        for solver in (GreedySolver(), SamplingSolver(num_samples=40)):
            other = solver.solve(problem, rng=1)
            assert covered >= len(other.assignment.assigned_tasks())

    def test_leftovers_assigned(self):
        problem = dense_problem(13, m=5, n=20)
        result = MaxTaskSolver().solve(problem)
        connected = sum(1 for w in problem.workers if problem.degree(w.worker_id) > 0)
        assert len(result.assignment) == connected

    def test_no_leftovers_mode(self):
        problem = dense_problem(13, m=5, n=20)
        result = MaxTaskSolver(assign_leftovers=False).solve(problem)
        assert len(result.assignment) == result.stats["tasks_covered"]

    def test_stats(self):
        problem = dense_problem(15)
        result = MaxTaskSolver().solve(problem)
        assert result.stats["tasks_covered"] >= 1.0
        assert result.stats["leftover_workers"] >= 0.0
