"""Tests for SA_Merge (Figure 9) and conflicting-worker classification."""

import pytest

from repro.algorithms.merge import conflict_groups, sa_merge
from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem
from tests.conftest import make_task, make_worker


def merge_problem():
    """Two task clusters; several workers able to serve both sides."""
    tasks = [
        make_task(0, x=0.2, y=0.5), make_task(1, x=0.25, y=0.5),
        make_task(2, x=0.8, y=0.5), make_task(3, x=0.85, y=0.5),
    ]
    workers = [
        make_worker(0, x=0.2, y=0.45, velocity=0.02, confidence=0.9),   # left only
        make_worker(1, x=0.8, y=0.45, velocity=0.02, confidence=0.85),  # right only
        make_worker(2, x=0.5, y=0.5, velocity=2.0, confidence=0.8),     # conflicting
        make_worker(3, x=0.5, y=0.45, velocity=2.0, confidence=0.7),    # conflicting
        make_worker(4, x=0.5, y=0.55, velocity=2.0, confidence=0.6),    # conflicting
    ]
    return RdbscProblem(tasks, workers)


class TestConflictGroups:
    def test_no_conflicts(self):
        a1 = Assignment.from_pairs([(0, 0)])
        a2 = Assignment.from_pairs([(2, 1)])
        assert conflict_groups(a1, a2, [5]) == []

    def test_single_icw(self):
        a1 = Assignment.from_pairs([(0, 2)])
        a2 = Assignment.from_pairs([(2, 2)])
        assert conflict_groups(a1, a2, [2]) == [[2]]

    def test_worker_assigned_one_side_not_conflicting(self):
        a1 = Assignment.from_pairs([(0, 2)])
        a2 = Assignment()
        assert conflict_groups(a1, a2, [2]) == []

    def test_dcws_grouped_by_shared_task(self):
        # Workers 2 and 3 share task 0 in solution 1 -> dependent.
        a1 = Assignment.from_pairs([(0, 2), (0, 3)])
        a2 = Assignment.from_pairs([(2, 2), (3, 3)])
        assert conflict_groups(a1, a2, [2, 3]) == [[2, 3]]

    def test_transitive_grouping_through_other_side(self):
        # 2-3 share task 0 in S1; 3-4 share task 3 in S2 -> one group of 3.
        a1 = Assignment.from_pairs([(0, 2), (0, 3), (1, 4)])
        a2 = Assignment.from_pairs([(2, 2), (3, 3), (3, 4)])
        assert conflict_groups(a1, a2, [2, 3, 4]) == [[2, 3, 4]]

    def test_independent_groups_stay_separate(self):
        a1 = Assignment.from_pairs([(0, 2), (1, 3)])
        a2 = Assignment.from_pairs([(2, 2), (3, 3)])
        assert conflict_groups(a1, a2, [2, 3]) == [[2], [3]]


class TestSaMerge:
    def test_merge_without_conflicts(self):
        problem = merge_problem()
        a1 = Assignment.from_pairs([(0, 0)])
        a2 = Assignment.from_pairs([(2, 1)])
        merged, stats = sa_merge(problem, a1, a2, [2, 3, 4])
        assert sorted(merged.pairs()) == [(0, 0), (2, 1)]
        assert stats.conflicts == 0

    def test_each_conflicting_worker_kept_exactly_once(self):
        problem = merge_problem()
        a1 = Assignment.from_pairs([(0, 0), (1, 2), (1, 3), (0, 4)])
        a2 = Assignment.from_pairs([(2, 1), (3, 2), (2, 3), (2, 4)])
        merged, stats = sa_merge(problem, a1, a2, [2, 3, 4])
        assert stats.conflicts == 3
        for worker_id in (2, 3, 4):
            task = merged.task_of(worker_id)
            assert task is not None
            # Kept copy must be one of the two candidate tasks.
            assert task in {a1.task_of(worker_id), a2.task_of(worker_id)}

    def test_non_conflicting_assignments_preserved(self):
        # Lemma 6.1: deletions never move non-conflicting workers.
        problem = merge_problem()
        a1 = Assignment.from_pairs([(0, 0), (1, 2)])
        a2 = Assignment.from_pairs([(2, 1), (3, 2)])
        merged, _ = sa_merge(problem, a1, a2, [2])
        assert merged.task_of(0) == 0
        assert merged.task_of(1) == 2

    def test_single_sided_conflicting_worker_kept(self):
        problem = merge_problem()
        a1 = Assignment.from_pairs([(1, 2)])
        a2 = Assignment()
        merged, stats = sa_merge(problem, a1, a2, [2])
        assert merged.task_of(2) == 1
        assert stats.conflicts == 0

    def test_greedy_fallback_for_large_groups(self):
        problem = merge_problem()
        a1 = Assignment.from_pairs([(0, 2), (0, 3), (0, 4)])
        a2 = Assignment.from_pairs([(2, 2), (2, 3), (2, 4)])
        merged, stats = sa_merge(problem, a1, a2, [2, 3, 4], max_group_size=2)
        assert stats.greedy_groups == 1
        for worker_id in (2, 3, 4):
            assert merged.task_of(worker_id) in {0, 2}

    def test_merge_picks_undominated_option_for_icw(self):
        # Worker 2's two copies: left task 1 (alone) vs right task 2 where
        # worker 1 already sits.  Joining worker 1 yields strictly better
        # min-R AND diversity on the affected tasks... the merge must not
        # pick a dominated option.
        problem = merge_problem()
        a1 = Assignment.from_pairs([(1, 2)])
        a2 = Assignment.from_pairs([(2, 1), (2, 2)])
        merged, _ = sa_merge(problem, a1, a2, [2])
        # Whichever side is chosen, worker 1 must be untouched.
        assert merged.task_of(1) == 2
        assert merged.task_of(2) in {1, 2}
