"""Tests for BG_Partition (Figure 7) and the from-scratch 2-means."""

import numpy as np
import pytest

from repro.algorithms.partition import balanced_task_split, bg_partition, two_means
from repro.datagen import ExperimentConfig, generate_problem
from repro.geometry.points import Point
from tests.conftest import make_task, make_worker
from repro.core.problem import RdbscProblem


class TestTwoMeans:
    def test_separated_clusters(self):
        left = [Point(0.1 + 0.01 * i, 0.1) for i in range(5)]
        right = [Point(0.9 - 0.01 * i, 0.9) for i in range(5)]
        c1, c2 = two_means(left + right, rng=0)
        xs = sorted([c1.x, c2.x])
        assert xs[0] < 0.3 and xs[1] > 0.7

    def test_identical_points(self):
        c1, c2 = two_means([Point(0.5, 0.5)] * 4, rng=0)
        assert c1 == c2 == Point(0.5, 0.5)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            two_means([Point(0, 0)], rng=0)


class TestBalancedSplit:
    def test_exactly_balanced(self):
        rng = np.random.default_rng(0)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(size=(11, 2))]
        left, right = balanced_task_split(points, rng=1)
        assert len(left) == 6 and len(right) == 5
        assert sorted(left + right) == list(range(11))

    def test_respects_geometry(self):
        left_cluster = [Point(0.05 + 0.01 * i, 0.5) for i in range(4)]
        right_cluster = [Point(0.95 - 0.01 * i, 0.5) for i in range(4)]
        left, right = balanced_task_split(left_cluster + right_cluster, rng=2)
        sides = {frozenset(left), frozenset(right)}
        assert frozenset(range(4)) in sides
        assert frozenset(range(4, 8)) in sides

    def test_single_point_raises(self):
        with pytest.raises(ValueError):
            balanced_task_split([Point(0, 0)], rng=0)


class TestBgPartition:
    def _problem(self):
        # Two spatial clusters of tasks; workers near each cluster plus one
        # fast worker in the middle reaching both.
        tasks = [
            make_task(0, x=0.1, y=0.5), make_task(1, x=0.15, y=0.5),
            make_task(2, x=0.85, y=0.5), make_task(3, x=0.9, y=0.5),
        ]
        workers = [
            make_worker(0, x=0.1, y=0.45, velocity=0.02),
            make_worker(1, x=0.9, y=0.45, velocity=0.02),
            make_worker(2, x=0.5, y=0.5, velocity=2.0),
            make_worker(3, x=5.0, y=5.0, velocity=0.0001),  # isolated
        ]
        return RdbscProblem(tasks, workers)

    def test_tasks_split_evenly_and_disjoint(self):
        problem = self._problem()
        part = bg_partition(problem, rng=0)
        assert len(part.task_ids_1) == 2 and len(part.task_ids_2) == 2
        assert set(part.task_ids_1).isdisjoint(part.task_ids_2)
        assert set(part.task_ids_1) | set(part.task_ids_2) == {0, 1, 2, 3}

    def test_isolated_workers_single_side(self):
        problem = self._problem()
        part = bg_partition(problem, rng=0)
        # Workers 0 and 1 can only reach one cluster each.
        in_1 = 0 in part.worker_ids_1
        assert in_1 != (0 in part.worker_ids_2)
        in_1 = 1 in part.worker_ids_1
        assert in_1 != (1 in part.worker_ids_2)

    def test_conflicting_worker_duplicated(self):
        problem = self._problem()
        part = bg_partition(problem, rng=0)
        assert 2 in part.conflicting_worker_ids
        assert 2 in part.worker_ids_1 and 2 in part.worker_ids_2

    def test_disconnected_worker_dropped(self):
        problem = self._problem()
        part = bg_partition(problem, rng=0)
        assert 3 not in part.worker_ids_1
        assert 3 not in part.worker_ids_2
        assert 3 not in part.conflicting_worker_ids

    def test_on_generated_instance(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=20, num_workers=40), 3
        )
        part = bg_partition(problem, rng=3)
        assert abs(len(part.task_ids_1) - len(part.task_ids_2)) <= 1
        for worker_id in part.conflicting_worker_ids:
            candidates = set(problem.candidate_tasks(worker_id))
            assert candidates & set(part.task_ids_1)
            assert candidates & set(part.task_ids_2)
