"""Tests for the Section 4.3 bound-based pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pruning import (
    CandidateBounds,
    diversity_increase_bounds,
    prune_candidates,
)
from repro.core.diversity import WorkerProfile
from repro.core.expected import expected_std
from tests.conftest import make_task

probs = st.floats(min_value=0.0, max_value=1.0)
angles = st.floats(min_value=0.0, max_value=6.28)
times = st.floats(min_value=0.0, max_value=10.0)


def candidate(task_id, worker_id, dr, lb, ub):
    return CandidateBounds(task_id, worker_id, dr, lb, ub)


class TestDiversityIncreaseBounds:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(angles, times, probs), min_size=0, max_size=5),
        st.tuples(angles, times, probs),
    )
    def test_bounds_bracket_true_increase(self, current_raw, new_raw):
        task = make_task(start=0.0, end=10.0, beta=0.5)
        current = [
            WorkerProfile(i, a, t, p) for i, (a, t, p) in enumerate(current_raw)
        ]
        new = WorkerProfile(99, *new_raw)
        lower, upper = diversity_increase_bounds(task, current, new)
        true_delta = expected_std(task, [*current, new]) - expected_std(task, current)
        assert lower - 1e-9 <= true_delta <= upper + 1e-9

    def test_lower_bound_clamped_non_negative(self):
        task = make_task(start=0.0, end=10.0)
        new = WorkerProfile(0, 1.0, 5.0, 0.9)
        lower, upper = diversity_increase_bounds(task, [], new)
        assert lower >= 0.0
        assert upper >= lower


class TestPruneCandidates:
    def test_empty(self):
        assert prune_candidates([]) == []

    def test_single_survives(self):
        c = candidate(0, 0, 1.0, 0.1, 0.5)
        assert prune_candidates([c]) == [c]

    def test_dominated_pair_pruned(self):
        better = candidate(0, 0, 1.0, 0.6, 0.8)
        worse = candidate(1, 1, 0.5, 0.0, 0.5)  # dr smaller, ub < better's lb
        survivors = prune_candidates([better, worse])
        assert survivors == [better]

    def test_higher_dr_cannot_be_pruned_by_lower(self):
        low_dr = candidate(0, 0, 0.1, 0.9, 1.0)
        high_dr = candidate(1, 1, 5.0, 0.0, 0.1)
        survivors = prune_candidates([low_dr, high_dr])
        # high_dr loses on diversity but wins on reliability: kept.
        assert high_dr in survivors
        # low_dr has much better diversity: kept too.
        assert low_dr in survivors

    def test_tied_dr_can_prune_each_other(self):
        strong = candidate(0, 0, 1.0, 0.7, 0.9)
        weak = candidate(1, 1, 1.0, 0.1, 0.3)
        assert prune_candidates([strong, weak]) == [strong]

    def test_self_does_not_prune(self):
        only = candidate(0, 0, 1.0, 0.4, 0.4)
        assert prune_candidates([only]) == [only]

    def test_duplicate_best_lbs_prune_third(self):
        a = candidate(0, 0, 1.0, 0.5, 0.9)
        b = candidate(1, 1, 1.0, 0.5, 0.9)
        c = candidate(2, 2, 1.0, 0.0, 0.2)
        survivors = prune_candidates([a, b, c])
        assert a in survivors and b in survivors and c not in survivors

    def test_equal_bounds_all_survive(self):
        cs = [candidate(i, i, 1.0, 0.3, 0.5) for i in range(3)]
        assert prune_candidates(cs) == cs

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-5, max_value=5),
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_matches_quadratic_definition(self, raw):
        candidates = [
            candidate(i, i, dr, min(a, b), max(a, b))
            for i, (dr, a, b) in enumerate(raw)
        ]

        def is_pruned(c):
            return any(
                other is not c
                and other.delta_min_r >= c.delta_min_r
                and other.lb_delta_std > c.ub_delta_std
                for other in candidates
            )

        expected = [c for c in candidates if not is_pruned(c)]
        survivors = prune_candidates(candidates)
        assert sorted(survivors, key=lambda c: c.task_id) == sorted(
            expected, key=lambda c: c.task_id
        )
