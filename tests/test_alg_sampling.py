"""Tests for the sampling solver (Figure 5) and sample-size machinery (§5.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import SamplePlan, SamplingSolver, required_sample_size
from repro.algorithms.random_assign import RandomSolver, draw_random_assignment
from repro.algorithms.sample_size import eq15_lower_bound, log_rank_cdf
from repro.core.objectives import evaluate_assignment
from repro.datagen import ExperimentConfig, generate_problem


def dense_problem(seed=3, m=10, n=20):
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n), seed
    )


class TestRandomDraw:
    def test_every_connected_worker_assigned(self):
        problem = dense_problem()
        assignment = draw_random_assignment(problem, 0)
        for worker in problem.workers:
            if problem.degree(worker.worker_id) > 0:
                assert assignment.task_of(worker.worker_id) is not None
            else:
                assert assignment.task_of(worker.worker_id) is None

    def test_assigned_tasks_are_valid(self):
        problem = dense_problem(5)
        assignment = draw_random_assignment(problem, 1)
        for task_id, worker_id in assignment.pairs():
            assert problem.is_valid_pair(task_id, worker_id)

    def test_seeded_determinism(self):
        problem = dense_problem(7)
        assert draw_random_assignment(problem, 9) == draw_random_assignment(problem, 9)

    def test_random_solver_result(self):
        problem = dense_problem(9)
        result = RandomSolver().solve(problem, rng=2)
        fresh = evaluate_assignment(problem, result.assignment)
        assert result.objective.total_std == pytest.approx(fresh.total_std)


class TestSampleSize:
    def test_tiny_population(self):
        assert required_sample_size(0.0) == 1
        assert required_sample_size(-1.0) == 1

    def test_monotone_in_delta(self):
        log_n = 50.0
        low = required_sample_size(log_n, epsilon=0.1, delta=0.5)
        high = required_sample_size(log_n, epsilon=0.1, delta=0.99)
        assert high >= low

    def test_monotone_in_epsilon(self):
        log_n = 50.0
        loose = required_sample_size(log_n, epsilon=0.5, delta=0.9)
        tight = required_sample_size(log_n, epsilon=0.01, delta=0.9)
        assert tight >= loose

    def test_result_achieves_bound(self):
        log_n = 40.0
        eps, delta = 0.1, 0.9
        k = required_sample_size(log_n, eps, delta)
        assert log_rank_cdf(k, log_n, eps) <= math.log1p(-delta) + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            required_sample_size(10.0, epsilon=0.0)
        with pytest.raises(ValueError):
            required_sample_size(10.0, delta=1.0)

    def test_huge_population_finite(self):
        # ln N = 5000 would overflow any float N; must still work.
        k = required_sample_size(5000.0, epsilon=0.1, delta=0.9)
        assert 1 <= k <= 10_000

    def test_eq15_bound_finite_for_huge_population(self):
        bound = eq15_lower_bound(1e6, epsilon=0.1)
        assert bound == pytest.approx((0.9 * math.e - 1.0), abs=1e-6)

    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_cdf_decreasing_in_k(self, log_n):
        eps = 0.1
        lo = max(1, int(math.ceil(eq15_lower_bound(log_n, eps))))
        values = [log_rank_cdf(k, log_n, eps) for k in range(lo, lo + 20)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))


class TestSamplePlan:
    def test_floor_applies(self):
        plan = SamplePlan(min_samples=100)
        assert plan.resolve(50.0) >= 100

    def test_cap_applies(self):
        plan = SamplePlan(min_samples=10, max_samples=20)
        assert plan.resolve(1e6) <= 20

    def test_scaled(self):
        plan = SamplePlan(min_samples=30)
        scaled = plan.scaled(10)
        assert scaled.min_samples == 300
        assert scaled.max_samples >= 300

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            SamplePlan().scaled(0)

    def test_invalid_plan(self):
        with pytest.raises(ValueError):
            SamplePlan(min_samples=0)
        with pytest.raises(ValueError):
            SamplePlan(min_samples=10, max_samples=5)


class TestSamplingSolver:
    def test_fixed_sample_count(self):
        problem = dense_problem(11)
        solver = SamplingSolver(num_samples=25)
        assert solver.resolve_sample_count(problem) == 25
        result = solver.solve(problem, rng=1)
        assert result.stats["samples"] == 25.0

    def test_invalid_fixed_count(self):
        with pytest.raises(ValueError):
            SamplingSolver(num_samples=0).resolve_sample_count(dense_problem())

    def test_more_samples_not_worse(self):
        # The best of a superset of samples dominates-or-ties the subset's
        # best in dominance-count terms; check total_std does not regress
        # dramatically (same seed => first 5 samples shared).
        problem = dense_problem(13)
        few = SamplingSolver(num_samples=5).solve(problem, rng=3)
        many = SamplingSolver(num_samples=200).solve(problem, rng=3)
        assert many.objective.total_std >= 0.9 * few.objective.total_std

    def test_deterministic_given_seed(self):
        problem = dense_problem(15)
        a = SamplingSolver(num_samples=30).solve(problem, rng=4)
        b = SamplingSolver(num_samples=30).solve(problem, rng=4)
        assert a.assignment == b.assignment

    def test_beats_single_random_draw_usually(self):
        problem = dense_problem(17)
        random_result = RandomSolver().solve(problem, rng=6)
        sampled = SamplingSolver(num_samples=60).solve(problem, rng=6)
        # The sampling winner dominates most draws; at minimum it should
        # not be dominated by the lone random draw.
        from repro.core.objectives import dominates

        assert not dominates(random_result.objective, sampled.objective)
