"""Tests for answer aggregation and angular-coverage analysis."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import aggregate_answers, angular_coverage, coverage_report
from repro.core.diversity import WorkerProfile
from tests.conftest import make_task

angles = st.floats(min_value=0.0, max_value=2 * math.pi - 1e-9)


class TestAngularCoverage:
    def test_no_angles_zero(self):
        assert angular_coverage([], math.pi / 8) == 0.0

    def test_zero_tolerance_zero(self):
        assert angular_coverage([1.0, 2.0], 0.0) == 0.0

    def test_single_angle(self):
        assert angular_coverage([1.0], math.pi / 4) == pytest.approx(0.25)

    def test_four_cardinal_half_covered(self):
        cardinal = [0.0, math.pi / 2, math.pi, 3 * math.pi / 2]
        assert angular_coverage(cardinal, math.pi / 8) == pytest.approx(0.5)

    def test_overlapping_arcs_merge(self):
        assert angular_coverage([1.0, 1.1], 0.2) == pytest.approx(
            (0.4 + 0.1) / (2 * math.pi)
        )

    def test_wraparound_merge(self):
        value = angular_coverage([0.05, 2 * math.pi - 0.05], 0.1)
        assert value == pytest.approx(0.3 / (2 * math.pi), abs=1e-6)

    def test_full_circle(self):
        assert angular_coverage([0.0], 4.0) == 1.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            angular_coverage([1.0], -0.1)

    @given(st.lists(angles, max_size=15), st.floats(min_value=0.0, max_value=3.0))
    def test_bounded(self, raw, tolerance):
        value = angular_coverage(raw, tolerance)
        assert 0.0 <= value <= 1.0

    @given(st.lists(angles, min_size=1, max_size=10), st.floats(min_value=0.01, max_value=1.0))
    def test_monotone_in_angles(self, raw, tolerance):
        subset = raw[: len(raw) // 2 + 1]
        assert angular_coverage(raw, tolerance) >= angular_coverage(subset, tolerance) - 1e-9


class TestCoverageReport:
    def test_ratio(self):
        report = coverage_report([0.0], [0.0, math.pi], math.pi / 6)
        assert report.experimental == pytest.approx(1.0 / 6.0)
        assert report.ground_truth == pytest.approx(1.0 / 3.0)
        assert report.ratio == pytest.approx(0.5)

    def test_zero_ground_truth(self):
        report = coverage_report([], [], 0.5)
        assert report.ratio == 1.0


class TestAggregation:
    def _profiles(self):
        # Three tight clusters: angles near 0, pi, and times split early/late.
        return [
            WorkerProfile(0, 0.02, 1.0, 0.9),
            WorkerProfile(1, 0.04, 1.2, 0.9),
            WorkerProfile(2, math.pi, 8.0, 0.9),
            WorkerProfile(3, math.pi + 0.03, 8.2, 0.9),
            WorkerProfile(4, math.pi / 2, 5.0, 0.9),
        ]

    def test_empty(self):
        assert aggregate_answers(make_task(), [], 3) == []

    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            aggregate_answers(make_task(), self._profiles(), 0)

    def test_groups_cover_all_members(self):
        task = make_task(start=0.0, end=10.0)
        groups = aggregate_answers(task, self._profiles(), 3, rng=0)
        members = [p for g in groups for p in g.members]
        assert sorted(p.worker_id for p in members) == [0, 1, 2, 3, 4]

    def test_representative_is_member(self):
        task = make_task(start=0.0, end=10.0)
        for group in aggregate_answers(task, self._profiles(), 3, rng=0):
            assert group.representative in group.members

    def test_fewer_answers_than_groups(self):
        task = make_task(start=0.0, end=10.0)
        groups = aggregate_answers(task, self._profiles()[:2], 5, rng=0)
        assert 1 <= len(groups) <= 2

    def test_similar_answers_grouped(self):
        task = make_task(start=0.0, end=10.0, beta=0.5)
        groups = aggregate_answers(task, self._profiles(), 3, rng=0)
        by_worker = {}
        for gi, group in enumerate(groups):
            for profile in group.members:
                by_worker[profile.worker_id] = gi
        assert by_worker[0] == by_worker[1]
        assert by_worker[2] == by_worker[3]

    def test_deterministic_given_rng(self):
        task = make_task(start=0.0, end=10.0)
        a = aggregate_answers(task, self._profiles(), 3, rng=5)
        b = aggregate_answers(task, self._profiles(), 3, rng=5)
        assert [g.members for g in a] == [g.members for g in b]
