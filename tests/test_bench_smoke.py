"""Benchmark smoke suite: every ``benchmarks/bench_*.py`` must still run.

The 27 figure/ablation/record benchmarks are pytest modules that are only
executed by hand (``make benchsmoke`` / ``pytest benchmarks``), which
historically lets them rot silently when an API they use changes.  This
suite, selected with ``pytest -m benchsmoke``, does two things per bench
module:

* imports it (catching renamed modules, moved functions, bad imports),
* runs its computational core at *tiny* scale through a registered smoke
  runner — one sweep point, one seed, a few entities — without the
  full-scale trend assertions (which are meaningless at smoke sizes).

A bench module without a registered runner fails ``test_every_bench_has_a
_smoke_runner``, so new benchmarks must either register here or
consciously opt out.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.benchsmoke

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


def load_bench(name: str):
    """Import ``benchmarks/<name>.py`` under an isolated module name."""
    spec = importlib.util.spec_from_file_location(
        f"benchsmoke_{name}", BENCH_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def run_tiny_experiment(experiment):
    """Run one sweep point of an Experiment spec with one seed."""
    from repro.experiments import run_experiment
    from repro.experiments.spec import Experiment

    tiny = Experiment(
        name=f"{experiment.name}__smoke",
        figure=experiment.figure,
        parameter_name=experiment.parameter_name,
        points=list(experiment.points[:1]),
        make_solvers=experiment.make_solvers,
    )
    result = run_experiment(tiny, seeds=(1,))
    assert result.rows, experiment.name
    return result


def spec_runner(factory_name):
    """Smoke runner for benches of the spec + run_experiment shape."""

    def run(module):
        experiment = getattr(module, factory_name)()
        return run_tiny_experiment(experiment)

    return run


def run_fig16(module):
    vs_m, vs_n = module.fig16_cpu_time()
    run_tiny_experiment(vs_m)
    run_tiny_experiment(vs_n)


def run_table2(module):
    problem = module.generate_problem(
        module.ExperimentConfig.scaled_defaults(num_tasks=6, num_workers=12), 1
    )
    assert module.average_degree(problem) >= 0.0


#: bench module -> tiny-scale runner.  Keys must cover benchmarks/bench_*.py.
SMOKE_RUNNERS = {
    "bench_ablation_baselines": lambda m: m.baseline_comparison(seeds=(1,)),
    "bench_ablation_gamma": lambda m: m.gamma_ablation(gammas=(2, 8), seeds=(1,)),
    "bench_ablation_local_search": lambda m: m.run_local_search_ablation(seeds=(1,)),
    "bench_ablation_pruning": lambda m: m.pruning_ablation(seeds=(1,)),
    "bench_ablation_sampling_budget": lambda m: m.sampling_budget_ablation(
        budgets=(5, 20), seeds=(1,)
    ),
    "bench_dstd": lambda m: m.run_dstd_experiment(
        num_tasks=6,
        num_workers=24,
        block_sizes=(64,),
        profile_tasks=6,
        profile_workers=18,
        epochs=2,
        moves=4,
        repeats=1,
        write_json=False,
    ),
    "bench_durability": lambda m: m.run_durability_experiment(
        num_tasks=10,
        num_workers=40,
        epochs=3,
        churn_workers=4,
        eta=0.125,
        repeats=1,
        write_json=False,
    ),
    "bench_fastpath": lambda m: m.run_fastpath_experiment(
        num_tasks=12, num_workers=60, repeats=1, write_json=False
    ),
    "bench_incremental": lambda m: m.run_incremental_experiment(
        num_tasks=10,
        num_workers=40,
        epochs=3,
        churn_workers=4,
        churn_tasks=2,
        eta=0.125,
        write_json=False,
    ),
    "bench_warmstart": lambda m: m.run_warmstart_experiment(
        num_tasks=10,
        num_workers=40,
        epochs=3,
        churn_workers=2,
        churn_tasks=1,
        eta=0.125,
        solvers=("greedy",),
        backends=("python",),
        write_json=False,
    ),
    "bench_fig11_expiration": spec_runner("fig11_expiration_real"),
    "bench_fig12_reliability": spec_runner("fig12_reliability_real"),
    "bench_fig13_tasks_uniform": spec_runner("fig13_tasks_uniform"),
    "bench_fig14_workers_uniform": spec_runner("fig14_workers_uniform"),
    "bench_fig15_angles_uniform": spec_runner("fig15_angles_uniform"),
    "bench_fig16_cpu_time": run_fig16,
    "bench_fig17_index": lambda m: m.run_index_experiment(
        n_values=(40, 80), num_tasks=60
    ),
    "bench_fig18_platform": lambda m: m.run_platform_experiment(
        t_intervals=(2.0,), sim_minutes=4.0
    ),
    "bench_fig19_20_coverage": lambda m: m.run_coverage_showcase(n_workers=12),
    "bench_fig22_beta": spec_runner("fig22_beta_real"),
    "bench_fig23_tasks_skewed": spec_runner("fig23_tasks_skewed"),
    "bench_fig24_workers_skewed": spec_runner("fig24_workers_skewed"),
    "bench_fig25_velocity_uniform": spec_runner("fig25_velocity_uniform"),
    "bench_fig26_velocity_skewed": spec_runner("fig26_velocity_skewed"),
    "bench_fig27_angles_skewed": spec_runner("fig27_angles_skewed"),
    "bench_parallel_solve": lambda m: m.run_parallel_solve_experiment(
        num_tasks=10,
        num_workers=40,
        num_samples=24,
        epochs=2,
        moves=6,
        processes=(2,),
        repeats=1,
        write_json=False,
    ),
    "bench_serve": lambda m: m.run_serve_experiment(
        num_tasks=6,
        num_workers=16,
        rates=(120.0,),
        duration_s=0.5,
        epoch_interval=0.2,
        repeats=1,
        write_json=False,
    ),
    "bench_section72_maintenance": lambda m: m.run_maintenance_experiment(
        n_ops=10, seed=3
    ),
    "bench_elastic": lambda m: m.run_elastic_experiment(
        num_tasks=8,
        num_workers=120,
        cohort=24,
        epochs=3,
        worker_churn=4,
        task_churn=1,
        eta=0.125,
        write_json=False,
    ),
    "bench_sharding": lambda m: m.run_sharding_experiment(
        num_tasks=8,
        num_workers=40,
        epochs=2,
        moves=10,
        worker_churn=2,
        task_churn=1,
        eta=0.125,
        include_process=False,
        write_json=False,
    ),
    "bench_table2_config": run_table2,
}


def test_every_bench_has_a_smoke_runner():
    on_disk = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))
    assert on_disk == sorted(SMOKE_RUNNERS), (
        "benchmarks/ and SMOKE_RUNNERS disagree; register a smoke runner "
        "for new bench modules in tests/test_bench_smoke.py"
    )


@pytest.mark.parametrize("name", sorted(SMOKE_RUNNERS))
def test_bench_smoke(name):
    module = load_bench(name)
    SMOKE_RUNNERS[name](module)
