"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main, make_solver


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99_nonsense"])

    def test_figure_registry_matches_builders(self):
        for name, builder in FIGURES.items():
            assert builder().name == name


class TestMakeSolver:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("greedy", "GREEDY"),
            ("sampling", "SAMPLING"),
            ("dc", "D&C"),
            ("gtruth", "G-TRUTH"),
            ("random", "RANDOM"),
            ("maxtask", "MAX-TASK"),
        ],
    )
    def test_known_names(self, name, expected):
        assert make_solver(name).name == expected

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_solver("quantum")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13_tasks_uniform" in out
        assert "pruning" in out

    def test_solve_single(self, capsys):
        code = main(
            ["solve", "--tasks", "10", "--workers", "20", "--solver", "greedy",
             "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GREEDY" in out
        assert "min_rel=" in out

    def test_solve_all(self, capsys):
        assert main(["solve", "--tasks", "8", "--workers", "16", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("GREEDY", "SAMPLING", "D&C", "G-TRUTH"):
            assert name in out

    def test_solve_skewed(self, capsys):
        assert main(
            ["solve", "--tasks", "8", "--workers", "16", "--distribution",
             "skewed", "--solver", "sampling"]
        ) == 0
        assert "SAMPLING" in capsys.readouterr().out

    def test_platform(self, capsys):
        assert main(
            ["platform", "--intervals", "3", "--minutes", "12", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "t= 3.0min" in out

    def test_coverage(self, capsys):
        assert main(["coverage"]) == 0
        assert "ground_truth" in capsys.readouterr().out

    def test_index(self, capsys):
        assert main(["index"]) == 0
        out = capsys.readouterr().out
        assert "Figure 17" in out and "pairs=" in out
