"""Unit tests for the Assignment bidirectional mapping."""

import pytest

from repro.core.assignment import Assignment


class TestAssignBasics:
    def test_assign_and_lookup(self):
        a = Assignment()
        a.assign(10, 1)
        assert a.task_of(1) == 10
        assert a.workers_for(10) == frozenset({1})
        assert a.is_assigned(1)

    def test_multiple_workers_per_task(self):
        a = Assignment()
        a.assign(10, 1)
        a.assign(10, 2)
        assert a.workers_for(10) == frozenset({1, 2})

    def test_worker_single_task_enforced(self):
        a = Assignment()
        a.assign(10, 1)
        with pytest.raises(ValueError):
            a.assign(11, 1)

    def test_unassign(self):
        a = Assignment()
        a.assign(10, 1)
        assert a.unassign(1) == 10
        assert a.task_of(1) is None
        assert a.workers_for(10) == frozenset()
        assert 10 not in a.assigned_tasks()

    def test_unassign_unknown_raises(self):
        with pytest.raises(KeyError):
            Assignment().unassign(5)

    def test_len_counts_workers(self):
        a = Assignment()
        a.assign(1, 1)
        a.assign(1, 2)
        a.assign(2, 3)
        assert len(a) == 3

    def test_pairs_iteration(self):
        a = Assignment.from_pairs([(1, 10), (2, 20), (1, 30)])
        assert sorted(a.pairs()) == [(1, 10), (1, 30), (2, 20)]

    def test_from_pairs_duplicate_worker_raises(self):
        with pytest.raises(ValueError):
            Assignment.from_pairs([(1, 10), (2, 10)])


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        a = Assignment.from_pairs([(1, 10)])
        b = a.copy()
        b.assign(2, 20)
        assert not a.is_assigned(20)
        assert b.is_assigned(20)

    def test_copy_deepens_task_sets(self):
        a = Assignment.from_pairs([(1, 10)])
        b = a.copy()
        b.assign(1, 11)
        assert a.workers_for(1) == frozenset({10})

    def test_equality_by_content(self):
        a = Assignment.from_pairs([(1, 10), (2, 20)])
        b = Assignment.from_pairs([(2, 20), (1, 10)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Assignment.from_pairs([(1, 10)]) != Assignment.from_pairs([(2, 10)])

    def test_empty_truths(self):
        a = Assignment()
        assert len(a) == 0
        assert a.assigned_tasks() == []
        assert list(a.pairs()) == []
