"""Unit and property tests for deterministic SD / TD / STD (Eqs. 3-5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.diversity import (
    WorkerProfile,
    approach_angle,
    arrival_intervals,
    spatial_diversity,
    std,
    std_of_workers,
    temporal_diversity,
    worker_profile,
    worker_profiles,
)
from repro.core.validity import ValidityRule
from repro.geometry.angles import TWO_PI
from tests.conftest import make_task, make_worker

angle_lists = st.lists(
    st.floats(min_value=0.0, max_value=TWO_PI - 1e-9), min_size=0, max_size=10
)


class TestSpatialDiversity:
    def test_no_rays_zero(self):
        assert spatial_diversity([]) == 0.0

    def test_single_ray_zero(self):
        assert spatial_diversity([1.3]) == 0.0

    def test_two_opposite_rays_max_for_pairs(self):
        # Two half-circles: entropy = ln 2.
        assert spatial_diversity([0.0, math.pi]) == pytest.approx(math.log(2.0))

    def test_uniform_rays_maximise(self):
        n = 6
        uniform = [k * TWO_PI / n for k in range(n)]
        assert spatial_diversity(uniform) == pytest.approx(math.log(n))

    def test_clustered_rays_low(self):
        clustered = [0.0, 0.01, 0.02]
        assert spatial_diversity(clustered) < 0.2

    def test_duplicate_rays_as_if_one(self):
        assert spatial_diversity([1.0, 1.0]) == pytest.approx(0.0, abs=1e-9)

    @given(angle_lists)
    def test_bounded_by_log_r(self, angles):
        value = spatial_diversity(angles)
        assert value >= 0.0
        if len(angles) >= 2:
            assert value <= math.log(len(angles)) + 1e-9

    @given(angle_lists, st.floats(min_value=-10, max_value=10))
    def test_rotation_invariant(self, angles, shift):
        rotated = [a + shift for a in angles]
        assert spatial_diversity(rotated) == pytest.approx(
            spatial_diversity(angles), abs=1e-9
        )


class TestArrivalIntervals:
    def test_no_arrivals_single_interval(self):
        assert arrival_intervals([], 0.0, 10.0) == [10.0]

    def test_splits(self):
        assert arrival_intervals([3.0, 7.0], 0.0, 10.0) == [3.0, 4.0, 3.0]

    def test_clamps_out_of_range(self):
        assert arrival_intervals([-5.0, 15.0], 0.0, 10.0) == [0.0, 10.0, 0.0]

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            arrival_intervals([1.0], 5.0, 4.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=8),
    )
    def test_intervals_sum_to_duration(self, arrivals):
        intervals = arrival_intervals(arrivals, 0.0, 10.0)
        assert len(intervals) == len(arrivals) + 1
        assert sum(intervals) == pytest.approx(10.0)


class TestTemporalDiversity:
    def test_no_arrivals_zero(self):
        assert temporal_diversity([], 0.0, 10.0) == 0.0

    def test_single_midpoint_arrival(self):
        assert temporal_diversity([5.0], 0.0, 10.0) == pytest.approx(math.log(2.0))

    def test_single_edge_arrival_zero(self):
        assert temporal_diversity([0.0], 0.0, 10.0) == pytest.approx(0.0, abs=1e-9)

    def test_zero_duration_zero(self):
        assert temporal_diversity([3.0], 3.0, 3.0) == 0.0

    def test_uniform_arrivals_maximise(self):
        arrivals = [2.5, 5.0, 7.5]
        assert temporal_diversity(arrivals, 0.0, 10.0) == pytest.approx(math.log(4.0))

    def test_single_arrival_positive_unlike_sd(self):
        # The asymmetry behind GREEDY's bad start-up: one worker creates
        # temporal diversity but no spatial diversity.
        assert temporal_diversity([4.0], 0.0, 10.0) > 0.0
        assert spatial_diversity([1.0]) == 0.0


class TestStd:
    def _profiles(self):
        return [
            WorkerProfile(0, 0.0, 2.5, 0.9),
            WorkerProfile(1, math.pi, 7.5, 0.8),
        ]

    def test_beta_blend(self):
        task = make_task(start=0.0, end=10.0)
        sd = spatial_diversity([0.0, math.pi])
        td = temporal_diversity([2.5, 7.5], 0.0, 10.0)
        assert std(task, self._profiles(), beta=1.0) == pytest.approx(sd)
        assert std(task, self._profiles(), beta=0.0) == pytest.approx(td)
        assert std(task, self._profiles(), beta=0.3) == pytest.approx(0.3 * sd + 0.7 * td)

    def test_default_beta_from_task(self):
        task = make_task(start=0.0, end=10.0, beta=1.0)
        assert std(task, self._profiles()) == pytest.approx(
            spatial_diversity([0.0, math.pi])
        )

    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            std(make_task(), self._profiles(), beta=2.0)


class TestWorkerProfiles:
    def test_approach_angle_east(self):
        task = make_task(x=0.5, y=0.5)
        worker = make_worker(x=0.9, y=0.5)
        assert approach_angle(task, worker) == pytest.approx(0.0)

    def test_approach_angle_coincident_defaults_zero(self):
        task = make_task(x=0.5, y=0.5)
        worker = make_worker(x=0.5, y=0.5)
        assert approach_angle(task, worker) == 0.0

    def test_worker_profile_fields(self):
        task = make_task(x=0.5, y=0.5, start=0.0, end=10.0)
        worker = make_worker(x=0.0, y=0.5, velocity=0.25, confidence=0.77)
        profile = worker_profile(task, worker)
        assert profile.worker_id == worker.worker_id
        assert profile.arrival == pytest.approx(2.0)
        assert profile.angle == pytest.approx(math.pi)
        assert profile.confidence == 0.77

    def test_worker_profile_invalid_pair_raises(self):
        task = make_task(x=0.5, y=0.5, start=0.0, end=0.1)
        slow = make_worker(x=0.0, y=0.5, velocity=0.01)
        with pytest.raises(ValueError):
            worker_profile(task, slow)

    def test_std_of_workers_matches_profiles(self):
        task = make_task(x=0.5, y=0.5, start=0.0, end=10.0)
        workers = [
            make_worker(0, x=0.1, y=0.5, velocity=0.2),
            make_worker(1, x=0.9, y=0.5, velocity=0.1),
        ]
        via_profiles = std(task, worker_profiles(task, workers, ValidityRule()))
        assert std_of_workers(task, workers) == pytest.approx(via_profiles)
