"""Property tests: the O(r^2) matrix reduction equals exact enumeration.

This is the load-bearing correctness argument for Lemma 3.1 / Eqs. 9-10:
on random instances the polynomial computation must agree with the
possible-world oracle to floating-point precision, including edge cases
(duplicate angles, boundary arrivals, certain and hopeless workers).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversity import WorkerProfile, std
from repro.core.expected import (
    expected_spatial_diversity,
    expected_std,
    expected_std_bounds,
    expected_temporal_diversity,
)
from repro.core.possible_worlds import (
    exact_expected_spatial_diversity,
    exact_expected_std,
    exact_expected_temporal_diversity,
)
from repro.geometry.angles import TWO_PI
from tests.conftest import make_task

probs = st.floats(min_value=0.0, max_value=1.0)
angles = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9)
times = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def diversity_instances(draw, max_workers=7):
    r = draw(st.integers(min_value=0, max_value=max_workers))
    return (
        [draw(angles) for _ in range(r)],
        [draw(times) for _ in range(r)],
        [draw(probs) for _ in range(r)],
    )


class TestSpatialReduction:
    def test_empty(self):
        assert expected_spatial_diversity([], []) == 0.0

    def test_single_worker_zero(self):
        assert expected_spatial_diversity([1.0], [0.9]) == 0.0

    def test_two_workers_closed_form(self):
        # Both must succeed for SD > 0; then SD = h(g) + h(1-g).
        value = expected_spatial_diversity([0.0, math.pi], [0.8, 0.5])
        assert value == pytest.approx(0.8 * 0.5 * math.log(2.0))

    @settings(max_examples=120, deadline=None)
    @given(diversity_instances())
    def test_matches_exact(self, instance):
        angle_list, _, ps = instance
        fast = expected_spatial_diversity(angle_list, ps)
        exact = exact_expected_spatial_diversity(angle_list, ps)
        assert fast == pytest.approx(exact, abs=1e-10)

    def test_duplicate_angles(self):
        fast = expected_spatial_diversity([1.0, 1.0, 4.0], [0.5, 0.5, 0.5])
        exact = exact_expected_spatial_diversity([1.0, 1.0, 4.0], [0.5, 0.5, 0.5])
        assert fast == pytest.approx(exact, abs=1e-12)

    def test_certain_and_hopeless_mixture(self):
        ps = [1.0, 0.0, 1.0]
        a = [0.0, 2.0, math.pi]
        assert expected_spatial_diversity(a, ps) == pytest.approx(
            exact_expected_spatial_diversity(a, ps), abs=1e-12
        )


class TestTemporalReduction:
    def test_empty(self):
        assert expected_temporal_diversity([], [], 0.0, 10.0) == 0.0

    def test_zero_duration(self):
        assert expected_temporal_diversity([1.0], [0.9], 1.0, 1.0) == 0.0

    def test_single_worker_closed_form(self):
        # TD > 0 only when the worker succeeds.
        value = expected_temporal_diversity([5.0], [0.6], 0.0, 10.0)
        assert value == pytest.approx(0.6 * math.log(2.0))

    @settings(max_examples=120, deadline=None)
    @given(diversity_instances())
    def test_matches_exact(self, instance):
        _, arrivals, ps = instance
        fast = expected_temporal_diversity(arrivals, ps, 0.0, 10.0)
        exact = exact_expected_temporal_diversity(arrivals, ps, 0.0, 10.0)
        assert fast == pytest.approx(exact, abs=1e-10)

    def test_boundary_arrivals(self):
        arrivals = [0.0, 10.0, 5.0]
        ps = [0.7, 0.7, 0.7]
        assert expected_temporal_diversity(arrivals, ps, 0.0, 10.0) == pytest.approx(
            exact_expected_temporal_diversity(arrivals, ps, 0.0, 10.0), abs=1e-12
        )


class TestExpectedStd:
    @settings(max_examples=60, deadline=None)
    @given(diversity_instances(max_workers=6), st.floats(min_value=0.0, max_value=1.0))
    def test_matches_exact(self, instance, beta):
        angle_list, arrivals, ps = instance
        task = make_task(start=0.0, end=10.0, beta=beta)
        profiles = [
            WorkerProfile(i, angle_list[i], arrivals[i], ps[i])
            for i in range(len(ps))
        ]
        assert expected_std(task, profiles) == pytest.approx(
            exact_expected_std(task, profiles), abs=1e-10
        )

    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            expected_std(make_task(), [], beta=1.5)

    def test_beta_extremes_skip_other_component(self):
        task = make_task(start=0.0, end=10.0)
        profiles = [WorkerProfile(0, 1.0, 5.0, 0.9), WorkerProfile(1, 2.0, 6.0, 0.9)]
        sd_only = expected_std(task, profiles, beta=1.0)
        td_only = expected_std(task, profiles, beta=0.0)
        assert sd_only == pytest.approx(
            expected_spatial_diversity([1.0, 2.0], [0.9, 0.9])
        )
        assert td_only == pytest.approx(
            expected_temporal_diversity([5.0, 6.0], [0.9, 0.9], 0.0, 10.0)
        )


class TestBounds:
    @settings(max_examples=80, deadline=None)
    @given(diversity_instances(max_workers=6), st.floats(min_value=0.0, max_value=1.0))
    def test_bounds_bracket_expected(self, instance, beta):
        # Section 4.3: lb <= E[STD] <= ub must hold on every instance.
        angle_list, arrivals, ps = instance
        task = make_task(start=0.0, end=10.0, beta=beta)
        profiles = [
            WorkerProfile(i, angle_list[i], arrivals[i], ps[i])
            for i in range(len(ps))
        ]
        lower, upper = expected_std_bounds(task, profiles)
        value = expected_std(task, profiles)
        assert lower - 1e-9 <= value <= upper + 1e-9

    def test_empty_profiles_zero_bounds(self):
        assert expected_std_bounds(make_task(), []) == (0.0, 0.0)

    def test_upper_is_deterministic_std(self):
        task = make_task(start=0.0, end=10.0)
        profiles = [WorkerProfile(0, 0.0, 2.0, 0.5), WorkerProfile(1, 3.0, 8.0, 0.5)]
        _, upper = expected_std_bounds(task, profiles)
        assert upper == pytest.approx(std(task, profiles))
