"""Tests for objective evaluation and the incremental evaluator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.objectives import (
    IncrementalEvaluator,
    ObjectiveValue,
    dominates,
    evaluate_assignment,
)
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_problem
from tests.conftest import make_task, make_worker


def small_problem(seed: int = 3) -> RdbscProblem:
    config = ExperimentConfig.scaled_defaults(num_tasks=10, num_workers=20)
    return generate_problem(config, seed)


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates(ObjectiveValue(0.9, 5.0), ObjectiveValue(0.8, 4.0))

    def test_better_one_equal_other(self):
        assert dominates(ObjectiveValue(0.9, 5.0), ObjectiveValue(0.9, 4.0))
        assert dominates(ObjectiveValue(0.95, 5.0), ObjectiveValue(0.9, 5.0))

    def test_equal_does_not_dominate(self):
        v = ObjectiveValue(0.9, 5.0)
        assert not dominates(v, v)

    def test_tradeoff_does_not_dominate(self):
        a, b = ObjectiveValue(0.9, 4.0), ObjectiveValue(0.8, 5.0)
        assert not dominates(a, b)
        assert not dominates(b, a)


class TestEvaluateAssignment:
    def test_empty_assignment(self):
        problem = small_problem()
        value = evaluate_assignment(problem, Assignment())
        assert value == ObjectiveValue(0.0, 0.0)

    def test_single_pair(self):
        tasks = [make_task(0, x=0.5, y=0.5, start=0.0, end=10.0)]
        workers = [make_worker(0, x=0.2, y=0.5, velocity=0.1, confidence=0.8)]
        problem = RdbscProblem(tasks, workers)
        a = Assignment.from_pairs([(0, 0)])
        value = evaluate_assignment(problem, a)
        assert value.min_reliability == pytest.approx(0.8)
        assert value.total_std > 0.0  # one worker still creates TD

    def test_include_empty_flag(self):
        tasks = [make_task(0, x=0.4), make_task(1, x=0.6)]
        workers = [make_worker(0, x=0.39, y=0.5, velocity=0.2, confidence=0.9)]
        problem = RdbscProblem(tasks, workers)
        a = Assignment.from_pairs([(0, 0)])
        assert evaluate_assignment(problem, a).min_reliability == pytest.approx(0.9)
        assert evaluate_assignment(problem, a, include_empty=True).min_reliability == 0.0

    def test_certain_worker_full_reliability(self):
        tasks = [make_task(0, x=0.5, y=0.5)]
        workers = [make_worker(0, x=0.4, y=0.5, velocity=0.5, confidence=1.0)]
        problem = RdbscProblem(tasks, workers)
        a = Assignment.from_pairs([(0, 0)])
        assert evaluate_assignment(problem, a).min_reliability == 1.0


class TestIncrementalEvaluator:
    def test_matches_batch_evaluation(self):
        problem = small_problem(5)
        evaluator = IncrementalEvaluator(problem)
        assignment = Assignment()
        for worker in problem.workers:
            candidates = problem.candidate_tasks(worker.worker_id)
            if candidates:
                task_id = candidates[0]
                evaluator.apply(task_id, worker.worker_id)
                assignment.assign(task_id, worker.worker_id)
        batch = evaluate_assignment(problem, assignment)
        incremental = evaluator.value()
        assert incremental.min_reliability == pytest.approx(batch.min_reliability)
        assert incremental.total_std == pytest.approx(batch.total_std)

    def test_delta_estd_predicts_apply(self):
        problem = small_problem(7)
        evaluator = IncrementalEvaluator(problem)
        for worker in problem.workers[:8]:
            candidates = problem.candidate_tasks(worker.worker_id)
            if not candidates:
                continue
            task_id = candidates[-1]
            before = evaluator.total_std
            predicted = evaluator.delta_estd(task_id, worker.worker_id)
            evaluator.apply(task_id, worker.worker_id)
            assert evaluator.total_std - before == pytest.approx(predicted, abs=1e-9)

    def test_delta_estd_non_negative(self):
        # Lemma 4.2 at the evaluator level.
        problem = small_problem(11)
        evaluator = IncrementalEvaluator(problem)
        for worker in problem.workers:
            for task_id in problem.candidate_tasks(worker.worker_id):
                assert evaluator.delta_estd(task_id, worker.worker_id) >= -1e-12

    def test_delta_min_r_first_assignment(self):
        tasks = [make_task(0, x=0.5, y=0.5)]
        workers = [make_worker(0, x=0.4, y=0.5, velocity=0.5, confidence=0.9)]
        problem = RdbscProblem(tasks, workers)
        evaluator = IncrementalEvaluator(problem)
        delta = evaluator.delta_min_r(0, 0)
        assert delta == pytest.approx(-math.log(0.1))

    def test_delta_min_r_new_task_can_be_negative(self):
        tasks = [make_task(0, x=0.4), make_task(1, x=0.6)]
        workers = [
            make_worker(0, x=0.39, y=0.5, velocity=0.2, confidence=0.99),
            make_worker(1, x=0.61, y=0.5, velocity=0.2, confidence=0.5),
        ]
        problem = RdbscProblem(tasks, workers)
        evaluator = IncrementalEvaluator(problem)
        evaluator.apply(0, 0)  # min R is now large
        # Opening task 1 with a weak worker drags the minimum down.
        assert evaluator.delta_min_r(1, 1) < 0.0

    def test_delta_min_r_matches_apply(self):
        problem = small_problem(13)
        evaluator = IncrementalEvaluator(problem)
        applied = 0
        for worker in problem.workers:
            candidates = problem.candidate_tasks(worker.worker_id)
            if not candidates:
                continue
            task_id = candidates[0]
            old_min = evaluator.min_r()
            predicted = evaluator.delta_min_r(task_id, worker.worker_id)
            evaluator.apply(task_id, worker.worker_id)
            new_min = evaluator.min_r()
            if math.isinf(old_min):
                assert new_min == pytest.approx(predicted)
            else:
                assert new_min - old_min == pytest.approx(predicted, abs=1e-9)
            applied += 1
            if applied >= 10:
                break

    def test_min_two_r_tracks_duplicates(self):
        tasks = [make_task(0, x=0.4), make_task(1, x=0.6)]
        workers = [
            make_worker(0, x=0.39, y=0.5, velocity=0.2, confidence=0.9),
            make_worker(1, x=0.61, y=0.5, velocity=0.2, confidence=0.9),
        ]
        problem = RdbscProblem(tasks, workers)
        evaluator = IncrementalEvaluator(problem)
        evaluator.apply(0, 0)
        evaluator.apply(1, 1)
        best, second = evaluator.min_two_r()
        assert best == pytest.approx(second)
