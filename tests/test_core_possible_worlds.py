"""Unit tests for the exact possible-world semantics (Eq. 2 / Eq. 6)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversity import WorkerProfile, spatial_diversity, temporal_diversity
from repro.core.possible_worlds import (
    MAX_EXACT_WORKERS,
    enumerate_worlds,
    exact_expected_spatial_diversity,
    exact_expected_std,
    exact_expected_temporal_diversity,
)
from tests.conftest import make_task

probs = st.floats(min_value=0.0, max_value=1.0)


class TestEnumerateWorlds:
    def test_empty_set_single_world(self):
        worlds = list(enumerate_worlds([]))
        assert worlds == [((), 1.0)]

    def test_single_worker_two_worlds(self):
        worlds = dict(enumerate_worlds([0.7]))
        assert worlds[()] == pytest.approx(0.3)
        assert worlds[(0,)] == pytest.approx(0.7)

    def test_world_count(self):
        assert len(list(enumerate_worlds([0.5] * 5))) == 32

    def test_certain_workers(self):
        worlds = {w: p for w, p in enumerate_worlds([1.0, 0.0]) if p > 0}
        assert worlds == {(0,): pytest.approx(1.0)}

    def test_refuses_oversized(self):
        with pytest.raises(ValueError):
            list(enumerate_worlds([0.5] * (MAX_EXACT_WORKERS + 1)))

    @given(st.lists(probs, max_size=8))
    def test_probabilities_sum_to_one(self, ps):
        total = sum(p for _, p in enumerate_worlds(ps))
        assert total == pytest.approx(1.0)

    def test_eq2_probability_formula(self):
        ps = [0.9, 0.6, 0.3]
        worlds = dict(enumerate_worlds(ps))
        # World {0, 2}: p0 * (1 - p1) * p2.
        assert worlds[(0, 2)] == pytest.approx(0.9 * 0.4 * 0.3)


class TestExactExpectations:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            exact_expected_spatial_diversity([0.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            exact_expected_temporal_diversity([0.0], [0.5, 0.5], 0.0, 1.0)

    def test_certain_workers_match_deterministic(self):
        angles = [0.0, math.pi / 2, math.pi]
        assert exact_expected_spatial_diversity(angles, [1.0] * 3) == pytest.approx(
            spatial_diversity(angles)
        )
        arrivals = [2.0, 5.0, 8.0]
        assert exact_expected_temporal_diversity(
            arrivals, [1.0] * 3, 0.0, 10.0
        ) == pytest.approx(temporal_diversity(arrivals, 0.0, 10.0))

    def test_zero_confidence_gives_zero(self):
        assert exact_expected_spatial_diversity([0.0, math.pi], [0.0, 0.0]) == 0.0

    def test_expected_std_blends(self):
        task = make_task(start=0.0, end=10.0)
        profiles = [
            WorkerProfile(0, 0.0, 2.0, 0.8),
            WorkerProfile(1, math.pi, 7.0, 0.6),
        ]
        sd = exact_expected_spatial_diversity([0.0, math.pi], [0.8, 0.6])
        td = exact_expected_temporal_diversity([2.0, 7.0], [0.8, 0.6], 0.0, 10.0)
        assert exact_expected_std(task, profiles, beta=0.25) == pytest.approx(
            0.25 * sd + 0.75 * td
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(probs, min_size=1, max_size=6), st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_added_worker(self, ps, extra):
        # Lemma 4.2: expected diversity never decreases with a new worker.
        angles = [i * 0.7 for i in range(len(ps))]
        before = exact_expected_spatial_diversity(angles, ps)
        after = exact_expected_spatial_diversity([*angles, 3.0], [*ps, extra])
        assert after >= before - 1e-9
