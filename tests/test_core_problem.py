"""Unit tests for the RdbscProblem valid-pair graph."""

import math

import pytest

from repro.core.problem import RdbscProblem, ValidPair
from repro.core.validity import ValidityRule
from tests.conftest import make_task, make_worker


def tiny_problem():
    """Two tasks, three workers; worker 2 can reach both tasks."""
    tasks = [
        make_task(0, x=0.2, y=0.5, start=0.0, end=10.0),
        make_task(1, x=0.8, y=0.5, start=0.0, end=10.0),
    ]
    workers = [
        make_worker(0, x=0.19, y=0.5, velocity=0.01),  # only task 0 in time
        make_worker(1, x=0.79, y=0.5, velocity=0.01),  # only task 1 in time
        make_worker(2, x=0.5, y=0.5, velocity=1.0),    # both
    ]
    return RdbscProblem(tasks, workers)


class TestGraphConstruction:
    def test_candidates(self):
        problem = tiny_problem()
        assert problem.candidate_tasks(0) == [0]
        assert problem.candidate_tasks(1) == [1]
        assert sorted(problem.candidate_tasks(2)) == [0, 1]

    def test_degree(self):
        problem = tiny_problem()
        assert problem.degree(0) == 1
        assert problem.degree(2) == 2

    def test_candidate_workers(self):
        problem = tiny_problem()
        assert sorted(problem.candidate_workers(0)) == [0, 2]
        assert sorted(problem.candidate_workers(1)) == [1, 2]

    def test_is_valid_pair_and_arrival(self):
        problem = tiny_problem()
        assert problem.is_valid_pair(0, 0)
        assert not problem.is_valid_pair(1, 0)
        assert problem.arrival(0, 2) == pytest.approx(0.3)

    def test_arrival_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            tiny_problem().arrival(1, 0)

    def test_num_pairs(self):
        assert tiny_problem().num_pairs == 4

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError):
            RdbscProblem([make_task(0), make_task(0)], [])

    def test_duplicate_worker_ids_rejected(self):
        with pytest.raises(ValueError):
            RdbscProblem([], [make_worker(0), make_worker(0)])


class TestPrecomputedPairs:
    def test_precomputed_pairs_respected(self):
        tasks = [make_task(0), make_task(1, x=0.6)]
        workers = [make_worker(0, x=0.5, y=0.5, velocity=1.0)]
        pairs = [ValidPair(0, 0, arrival=0.0)]
        problem = RdbscProblem(tasks, workers, precomputed_pairs=pairs)
        assert problem.candidate_tasks(0) == [0]
        assert problem.arrival(0, 0) == 0.0

    def test_unknown_ids_in_pairs_rejected(self):
        tasks = [make_task(0)]
        workers = [make_worker(0)]
        with pytest.raises(ValueError):
            RdbscProblem(tasks, workers, precomputed_pairs=[ValidPair(7, 0, 0.0)])
        with pytest.raises(ValueError):
            RdbscProblem(tasks, workers, precomputed_pairs=[ValidPair(0, 7, 0.0)])

    def test_pair_profile_uses_stored_arrival(self):
        tasks = [make_task(0, x=0.5, y=0.5, start=0.0, end=10.0)]
        workers = [make_worker(0, x=0.9, y=0.5, velocity=0.0)]  # unreachable
        pairs = [ValidPair(0, 0, arrival=4.5)]  # pinned anyway
        problem = RdbscProblem(tasks, workers, precomputed_pairs=pairs)
        profile = problem.pair_profile(0, 0)
        assert profile.arrival == 4.5
        assert profile.angle == pytest.approx(0.0)  # worker due east of task
        assert profile.confidence == workers[0].confidence

    def test_pair_profile_invalid_pair_raises(self):
        problem = tiny_problem()
        with pytest.raises(KeyError):
            problem.pair_profile(1, 0)


class TestPopulationAndRestriction:
    def test_log_population_size(self):
        problem = tiny_problem()
        # deg: 1, 1, 2 -> log population = log 2.
        assert problem.log_population_size() == pytest.approx(math.log(2.0))

    def test_log_population_ignores_isolated_workers(self):
        tasks = [make_task(0)]
        workers = [make_worker(0, x=0.45, y=0.5), make_worker(1, x=99.0, velocity=0.001)]
        problem = RdbscProblem(tasks, workers)
        assert problem.degree(1) == 0
        assert problem.log_population_size() == pytest.approx(0.0)

    def test_restricted_to_keeps_inherited_pairs(self):
        problem = tiny_problem()
        sub = problem.restricted_to([0], [0, 2])
        assert sub.num_tasks == 1
        assert sub.num_workers == 2
        assert sub.candidate_tasks(2) == [0]
        assert sub.arrival(0, 2) == problem.arrival(0, 2)

    def test_restriction_drops_cross_edges(self):
        problem = tiny_problem()
        sub = problem.restricted_to([1], [2])
        assert sub.candidate_tasks(2) == [1]
        assert not sub.is_valid_pair(0, 2)
