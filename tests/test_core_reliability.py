"""Unit and property tests for reliability (Eq. 1) and its reduction (Eq. 8)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem
from repro.core.reliability import (
    log_reliability,
    log_to_reliability,
    min_reliability,
    reliability,
    task_reliability,
)
from tests.conftest import make_task, make_worker

confidences = st.lists(
    st.floats(min_value=0.0, max_value=0.999), min_size=0, max_size=12
)


class TestReliability:
    def test_empty_set_zero(self):
        assert reliability([]) == 0.0

    def test_single_worker(self):
        assert reliability([0.9]) == pytest.approx(0.9)

    def test_two_workers(self):
        # 1 - 0.1 * 0.2 = 0.98
        assert reliability([0.9, 0.8]) == pytest.approx(0.98)

    def test_certain_worker_gives_one(self):
        assert reliability([0.5, 1.0]) == 1.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            reliability([1.5])

    @given(confidences, st.floats(min_value=0.0, max_value=0.999))
    def test_monotone_in_members(self, ps, extra):
        # Lemma 4.1: adding a worker never decreases reliability.
        assert reliability([*ps, extra]) >= reliability(ps) - 1e-12

    @given(confidences)
    def test_bounded(self, ps):
        assert 0.0 <= reliability(ps) <= 1.0


class TestLogReliability:
    def test_empty_zero(self):
        assert log_reliability([]) == 0.0

    def test_additivity(self):
        # Lemma 4.1: R(W + w) = R(W) - ln(1 - p_w).
        base = log_reliability([0.9, 0.5])
        assert log_reliability([0.9, 0.5, 0.7]) == pytest.approx(
            base - math.log(0.3)
        )

    def test_certain_worker_infinite(self):
        assert math.isinf(log_reliability([1.0]))

    @given(confidences)
    def test_equivalence_with_rel(self, ps):
        # Eq. 8: R = -ln(1 - rel).
        r = log_reliability(ps)
        assert log_to_reliability(r) == pytest.approx(reliability(ps), abs=1e-9)

    def test_log_to_reliability_rejects_negative(self):
        with pytest.raises(ValueError):
            log_to_reliability(-0.1)

    def test_log_to_reliability_inf(self):
        assert log_to_reliability(math.inf) == 1.0


class TestMinReliability:
    def _problem(self):
        tasks = [make_task(0, x=0.2), make_task(1, x=0.8), make_task(2, x=0.5)]
        workers = [
            make_worker(0, x=0.2, y=0.49, confidence=0.9),
            make_worker(1, x=0.8, y=0.49, confidence=0.8),
            make_worker(2, x=0.8, y=0.51, confidence=0.7),
        ]
        return RdbscProblem(tasks, workers)

    def test_min_over_nonempty(self):
        problem = self._problem()
        a = Assignment.from_pairs([(0, 0), (1, 1), (1, 2)])
        # Task 0: 0.9.  Task 1: 1 - 0.2*0.3 = 0.94.  Task 2: empty, skipped.
        assert min_reliability(problem, a) == pytest.approx(0.9)

    def test_include_empty_gives_zero(self):
        problem = self._problem()
        a = Assignment.from_pairs([(0, 0)])
        assert min_reliability(problem, a, include_empty=True) == 0.0

    def test_empty_assignment(self):
        problem = self._problem()
        assert min_reliability(problem, Assignment()) == 0.0

    def test_task_reliability(self):
        problem = self._problem()
        a = Assignment.from_pairs([(1, 1), (1, 2)])
        assert task_reliability(problem, a, 1) == pytest.approx(0.94)
        assert task_reliability(problem, a, 0) == 0.0
