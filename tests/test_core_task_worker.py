"""Unit tests for SpatialTask (Definition 1) and MovingWorker (Definition 2)."""

import math

import pytest

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from tests.conftest import make_task, make_worker


class TestSpatialTask:
    def test_duration(self):
        assert make_task(start=2.0, end=5.5).duration == pytest.approx(3.5)

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            make_task(start=5.0, end=4.0)

    def test_zero_length_period_allowed(self):
        task = make_task(start=3.0, end=3.0)
        assert task.duration == 0.0
        assert task.is_open_at(3.0)

    def test_is_open_at_boundaries_inclusive(self):
        task = make_task(start=1.0, end=2.0)
        assert task.is_open_at(1.0)
        assert task.is_open_at(2.0)
        assert not task.is_open_at(0.999)
        assert not task.is_open_at(2.001)

    def test_beta_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_task(beta=1.5)
        with pytest.raises(ValueError):
            make_task(beta=-0.1)

    def test_with_period(self):
        task = make_task(start=0.0, end=1.0)
        shifted = task.with_period(5.0, 7.0)
        assert shifted.start == 5.0 and shifted.end == 7.0
        assert shifted.task_id == task.task_id
        assert shifted.location == task.location

    def test_frozen(self):
        with pytest.raises(Exception):
            make_task().start = 99.0  # type: ignore[misc]


class TestMovingWorker:
    def test_negative_velocity_raises(self):
        with pytest.raises(ValueError):
            make_worker(velocity=-1.0)

    def test_confidence_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_worker(confidence=1.2)
        with pytest.raises(ValueError):
            make_worker(confidence=-0.1)

    def test_heads_towards_inside_cone(self):
        worker = make_worker(cone=AngleInterval(0.0, math.pi / 2))
        assert worker.heads_towards(Point(1.0, 0.5))  # bearing ~0.46

    def test_heads_towards_outside_cone(self):
        worker = make_worker(cone=AngleInterval(0.0, math.pi / 2))
        assert not worker.heads_towards(Point(-1.0, 0.0))

    def test_heads_towards_own_location(self):
        worker = make_worker(cone=AngleInterval(0.0, 0.1))
        assert worker.heads_towards(worker.location)

    def test_arrival_time(self):
        worker = make_worker(velocity=2.0, depart_time=1.0)
        assert worker.arrival_time_at(Point(3.0, 4.0)) == pytest.approx(3.5)

    def test_arrival_time_stationary_infinite(self):
        worker = make_worker(velocity=0.0)
        assert math.isinf(worker.arrival_time_at(Point(1.0, 0.0)))

    def test_log_confidence_weight(self):
        worker = make_worker(confidence=0.9)
        assert worker.log_confidence_weight == pytest.approx(-math.log(0.1))

    def test_log_confidence_weight_certain_worker(self):
        assert math.isinf(make_worker(confidence=1.0).log_confidence_weight)

    def test_log_confidence_weight_zero_worker(self):
        assert make_worker(confidence=0.0).log_confidence_weight == 0.0

    def test_moved_to(self):
        worker = make_worker(confidence=0.8, velocity=2.0)
        relocated = worker.moved_to(Point(0.3, 0.4), depart_time=9.0)
        assert relocated.location == Point(0.3, 0.4)
        assert relocated.depart_time == 9.0
        assert relocated.worker_id == worker.worker_id
        assert relocated.confidence == worker.confidence
        assert relocated.velocity == worker.velocity
