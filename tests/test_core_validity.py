"""Unit tests for the pair-validity rule (Definition 4, constraint 1)."""

import math

import pytest

from repro.core.validity import ValidityRule
from repro.geometry.angles import AngleInterval
from tests.conftest import make_task, make_worker


class TestStrictValidity:
    def test_reachable_pair_is_valid(self):
        # Distance 0.5 at speed 0.5 -> arrival at t=1, inside [0, 10].
        task = make_task(x=0.5, y=0.0, start=0.0, end=10.0)
        worker = make_worker(x=0.0, y=0.0, velocity=0.5)
        rule = ValidityRule()
        assert rule.is_valid(worker, task)
        assert rule.effective_arrival(worker, task) == pytest.approx(1.0)

    def test_too_slow_misses_deadline(self):
        task = make_task(x=1.0, y=0.0, start=0.0, end=1.0)
        worker = make_worker(x=0.0, y=0.0, velocity=0.5)  # arrives at t=2
        assert not ValidityRule().is_valid(worker, task)

    def test_arrival_before_start_invalid_when_strict(self):
        task = make_task(x=0.1, y=0.0, start=5.0, end=10.0)
        worker = make_worker(x=0.0, y=0.0, velocity=1.0)  # arrives at t=0.1
        assert not ValidityRule(allow_waiting=False).is_valid(worker, task)

    def test_arrival_exactly_at_start_valid(self):
        task = make_task(x=1.0, y=0.0, start=1.0, end=2.0)
        worker = make_worker(x=0.0, y=0.0, velocity=1.0)
        assert ValidityRule().effective_arrival(worker, task) == pytest.approx(1.0)

    def test_arrival_exactly_at_end_valid(self):
        task = make_task(x=2.0, y=0.0, start=0.0, end=2.0)
        worker = make_worker(x=0.0, y=0.0, velocity=1.0)
        assert ValidityRule().is_valid(worker, task)

    def test_direction_cone_blocks(self):
        # Task due west; worker only accepts eastward tasks.
        task = make_task(x=-1.0, y=0.0, start=0.0, end=10.0)
        worker = make_worker(x=0.0, y=0.0, cone=AngleInterval(0.0, math.pi / 4))
        assert not ValidityRule().is_valid(worker, task)

    def test_stationary_worker_remote_task_invalid(self):
        task = make_task(x=1.0, y=0.0)
        worker = make_worker(velocity=0.0)
        assert not ValidityRule().is_valid(worker, task)

    def test_stationary_worker_colocated_task_valid(self):
        task = make_task(x=0.0, y=0.0, start=0.0, end=1.0)
        worker = make_worker(x=0.0, y=0.0, velocity=0.0)
        assert ValidityRule().effective_arrival(worker, task) == pytest.approx(0.0)

    def test_depart_time_shifts_arrival(self):
        task = make_task(x=1.0, y=0.0, start=0.0, end=2.0)
        late_worker = make_worker(x=0.0, y=0.0, velocity=1.0, depart_time=1.5)
        # Arrives at 2.5 > end.
        assert not ValidityRule().is_valid(late_worker, task)


class TestWaitingValidity:
    def test_early_arrival_waits_until_start(self):
        task = make_task(x=0.1, y=0.0, start=5.0, end=10.0)
        worker = make_worker(x=0.0, y=0.0, velocity=1.0)
        rule = ValidityRule(allow_waiting=True)
        assert rule.effective_arrival(worker, task) == pytest.approx(5.0)

    def test_waiting_does_not_rescue_missed_deadline(self):
        task = make_task(x=5.0, y=0.0, start=0.0, end=1.0)
        worker = make_worker(x=0.0, y=0.0, velocity=1.0)  # arrives at t=5
        assert not ValidityRule(allow_waiting=True).is_valid(worker, task)

    def test_waiting_respects_direction_cone(self):
        task = make_task(x=-1.0, y=0.0, start=5.0, end=10.0)
        worker = make_worker(x=0.0, y=0.0, cone=AngleInterval(0.0, 0.5))
        assert not ValidityRule(allow_waiting=True).is_valid(worker, task)
