"""Tests for the workload generators (Table 2, UNIFORM/SKEWED, real substitutes)."""

import math

import numpy as np
import pytest

from repro.datagen import (
    ExperimentConfig,
    Trajectory,
    average_degree,
    generate_poi_field,
    generate_problem,
    generate_real_substitute_problem,
    generate_tasks,
    generate_trajectory,
    generate_workers,
    worker_from_trajectory,
)
from repro.datagen.beijing import latlon_to_unit, tasks_from_pois
from repro.geometry.points import Point


class TestConfigValidation:
    def test_defaults_are_paper_defaults(self):
        config = ExperimentConfig.paper_defaults()
        assert config.num_tasks == config.num_workers == 10_000

    def test_bad_distribution(self):
        with pytest.raises(ValueError):
            ExperimentConfig(distribution="zipf")

    def test_bad_ranges(self):
        with pytest.raises(ValueError):
            ExperimentConfig(expiration_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            ExperimentConfig(reliability_range=(0.5, 1.5))
        with pytest.raises(ValueError):
            ExperimentConfig(beta_range=(-0.1, 0.5))
        with pytest.raises(ValueError):
            ExperimentConfig(angle_range_max=0.0)

    def test_with_updates(self):
        config = ExperimentConfig.scaled_defaults()
        changed = config.with_updates(num_tasks=7)
        assert changed.num_tasks == 7
        assert changed.num_workers == config.num_workers


class TestSyntheticGeneration:
    def test_counts(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=17, num_workers=23)
        assert len(generate_tasks(config, 0)) == 17
        assert len(generate_workers(config, 0)) == 23

    def test_determinism(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=10, num_workers=10)
        assert generate_tasks(config, 5) == generate_tasks(config, 5)
        assert generate_workers(config, 5) == generate_workers(config, 5)

    def test_tasks_respect_config(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=50, num_workers=1)
        for task in generate_tasks(config, 1):
            assert 0.0 <= task.location.x <= 1.0
            assert 0.0 <= task.location.y <= 1.0
            assert config.start_time_range[0] <= task.start <= config.start_time_range[1]
            rt = task.end - task.start
            assert config.expiration_range[0] <= rt <= config.expiration_range[1] + 1e-9
            assert config.beta_range[0] <= task.beta <= config.beta_range[1]

    def test_workers_respect_config(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=1, num_workers=50)
        for worker in generate_workers(config, 1):
            assert config.velocity_range[0] <= worker.velocity <= config.velocity_range[1]
            assert (
                config.reliability_range[0]
                <= worker.confidence
                <= config.reliability_range[1]
            )
            assert worker.cone.width <= config.angle_range_max + 1e-9

    def test_skewed_concentrates_centre(self):
        config = ExperimentConfig(
            num_tasks=2000, num_workers=1, distribution="skewed"
        )
        tasks = generate_tasks(config, 3)
        centre = Point(0.5, 0.5)
        close = sum(1 for t in tasks if t.location.distance_to(centre) < 0.3)
        assert close / len(tasks) > 0.6

    def test_uniform_spreads(self):
        config = ExperimentConfig(num_tasks=2000, num_workers=1)
        tasks = generate_tasks(config, 3)
        centre = Point(0.5, 0.5)
        close = sum(1 for t in tasks if t.location.distance_to(centre) < 0.3)
        assert close / len(tasks) < 0.5

    def test_average_degree_density(self):
        problem = generate_problem(ExperimentConfig.scaled_defaults(), 2)
        assert average_degree(problem) >= 1.0


class TestTrajectories:
    def test_trajectory_invariants(self):
        trace = generate_trajectory(0)
        assert len(trace.points) == len(trace.timestamps)
        assert all(b > a for a, b in zip(trace.timestamps, trace.timestamps[1:]))
        assert trace.average_speed() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory((Point(0, 0),), (0.0,))
        with pytest.raises(ValueError):
            Trajectory((Point(0, 0), Point(1, 1)), (1.0, 1.0))
        with pytest.raises(ValueError):
            Trajectory((Point(0, 0), Point(1, 1)), (0.0,))

    def test_heading_sector_contains_bearings(self):
        from repro.geometry.angles import bearing

        trace = generate_trajectory(7)
        sector = trace.heading_sector()
        for point in trace.points[1:]:
            if point != trace.start:
                assert sector.contains(bearing(trace.start, point))

    def test_worker_from_trajectory_recipe(self):
        trace = generate_trajectory(9)
        worker = worker_from_trajectory(trace, worker_id=4, confidence=0.8)
        assert worker.location == trace.start
        assert worker.velocity == pytest.approx(trace.average_speed())
        assert worker.confidence == 0.8
        assert worker.cone.width <= trace.heading_sector().width + 1e-9


class TestBeijingSubstitute:
    def test_poi_field_in_unit_square(self):
        pois = generate_poi_field(500, 1)
        assert len(pois) == 500
        assert all(0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0 for p in pois)

    def test_poi_field_is_clustered(self):
        from repro.index.fractal import correlation_dimension

        pois = generate_poi_field(3000, 2)
        rng = np.random.default_rng(3)
        uniform = [Point(float(x), float(y)) for x, y in rng.uniform(size=(3000, 2))]
        assert correlation_dimension(pois) < correlation_dimension(uniform)

    def test_latlon_mapping(self):
        sw = latlon_to_unit(39.6, 116.1)
        ne = latlon_to_unit(40.25, 116.75)
        assert sw == Point(0.0, 0.0)
        assert ne == Point(1.0, 1.0)

    def test_tasks_from_pois_subsample(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=20, num_workers=1)
        pois = generate_poi_field(100, 4)
        tasks = tasks_from_pois(pois, 20, config, 4)
        assert len(tasks) == 20
        poi_set = set(pois)
        assert all(t.location in poi_set for t in tasks)

    def test_tasks_from_pois_oversample_rejected(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=20, num_workers=1)
        with pytest.raises(ValueError):
            tasks_from_pois(generate_poi_field(10, 4), 20, config, 4)

    def test_real_substitute_problem(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=25, num_workers=30)
        problem = generate_real_substitute_problem(config, 5)
        assert problem.num_tasks == 25
        assert problem.num_workers == 30
        assert problem.num_pairs > 0
