"""Durable engine state: WAL log, snapshot/restore, bit-identical replay.

The contract under test (``repro.engine.durable``): ``restore(snapshot) +
replay(log tail)`` reproduces the live engine's per-epoch plans
bit-exactly — on both backends, in full and warm solve modes, single and
sharded.  The kill-and-recover differential classes carry the ``churn``
marker (``pytest -m churn``) like the other engine-equivalence suites;
the codec and lifecycle units run in the default selection.
"""

import numpy as np
import pytest

from repro.algorithms.greedy import GreedySolver
from repro.algorithms.sampling import (
    SHARED_STREAM_V0,
    SamplingSolver,
    substream_base_seed,
)
from repro.core.diversity import WorkerProfile
from repro.dynamic import CrowdsourcingSession
from repro.engine import (
    AssignmentEngine,
    ElasticShardedAssignmentEngine,
    RebalancePolicy,
    ShardedAssignmentEngine,
)
from repro.engine.durable import (
    DurableLog,
    decode_snapshot,
    encode_snapshot,
    replay_records,
    restore_engine,
    rng_from_spec,
    rng_spec,
    solver_config,
    task_from_row,
    task_row,
    worker_from_row,
    worker_row,
)
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from tests.conftest import (
    DRIFT_SCENARIOS,
    ScriptedChurn,
    drive,
    make_task,
    make_worker,
    seed_population,
)


# ---------------------------------------------------------------------- #
# Codecs
# ---------------------------------------------------------------------- #


class TestCodecs:
    def test_task_row_round_trip_bit_exact(self):
        task = make_task(3, x=0.1234567890123456, y=1 / 3, start=0.1, end=7.7)
        assert task_from_row(task_row(task)) == task

    def test_worker_row_round_trip_bit_exact(self):
        worker = make_worker(
            9,
            x=2 / 3,
            y=0.9999999999999999,
            velocity=0.123,
            cone=AngleInterval(1.234567, 2.345678),
            confidence=0.87,
            depart_time=3.3,
        )
        restored = worker_from_row(worker_row(worker))
        assert restored == worker
        assert restored.cone.lo == worker.cone.lo  # normalisation idempotent

    def test_rng_seed_spec_round_trip(self):
        spec = rng_spec(17)
        assert rng_from_spec(spec) == 17

    def test_rng_generator_position_round_trip(self):
        generator = np.random.default_rng(5)
        generator.integers(0, 2**63, size=13)  # advance mid-stream
        restored = rng_from_spec(rng_spec(generator))
        assert restored.integers(0, 2**63, size=8).tolist() == (
            generator.integers(0, 2**63, size=8).tolist()
        )

    def test_rng_spec_survives_json(self):
        import json

        generator = np.random.default_rng(11)
        generator.random(7)
        spec = json.loads(json.dumps(rng_spec(generator)))
        restored = rng_from_spec(spec)
        assert restored.random(5).tolist() == generator.random(5).tolist()

    def test_rng_none_is_rejected(self):
        with pytest.raises(ValueError, match="deterministic rng"):
            rng_spec(None)

    @pytest.mark.parametrize("contract", ["substream-v1", SHARED_STREAM_V0])
    def test_substream_position_round_trip(self, contract):
        # The bug being pinned: ``substream_base_seed`` draws one integer
        # per SAMPLING solve from the engine's stream, so a restore that
        # re-seeded from scratch would draw different base seeds and
        # silently diverge every subsequent plan — under *both* contracts.
        generator = np.random.default_rng(23)
        for _ in range(4):  # four solves already happened
            substream_base_seed(generator)
        twin = rng_from_spec(rng_spec(generator))
        assert [substream_base_seed(twin) for _ in range(3)] == [
            substream_base_seed(generator) for _ in range(3)
        ]

    def test_snapshot_codec_round_trip(self, tmp_path):
        engine = AssignmentEngine(solver=GreedySolver(), rng=3, solve_mode="warm")
        seed_population(engine)
        engine.epoch(0.0)
        engine.hold_worker(4)
        snapshot = engine.snapshot()
        decoded = decode_snapshot(encode_snapshot(snapshot))
        assert decoded.tasks == snapshot.tasks
        assert decoded.workers == snapshot.workers
        assert decoded.assignment == snapshot.assignment
        assert decoded.held == snapshot.held
        assert decoded.plan.signatures == snapshot.plan.signatures
        assert decoded.plan.assignment == snapshot.plan.assignment
        assert decoded.delta.workers_held == snapshot.delta.workers_held
        assert decoded.metrics == snapshot.metrics


# ---------------------------------------------------------------------- #
# The log itself
# ---------------------------------------------------------------------- #


class TestDurableLog:
    def test_wal_mode_and_pragmas(self, tmp_path):
        log = DurableLog(tmp_path / "s.db")
        mode = log._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        log.close()
        log.close()  # idempotent

    def test_append_and_tail(self, tmp_path):
        log = DurableLog(tmp_path / "s.db")
        log.append_events([("task_arrive", 0.0, {"task": task_row(make_task(1))})])
        log.append_events([("worker_hold", 1.0, {"worker_id": 4})])
        records = list(log.tail(0))
        assert [r[1] for r in records] == ["task_arrive", "worker_hold"]
        assert list(log.tail(records[0][0])) == [records[1]]
        assert log.last_seq() == records[1][0]
        log.close()

    def test_fresh_engine_refuses_populated_log(self, tmp_path):
        path = tmp_path / "s.db"
        engine = AssignmentEngine(solver=GreedySolver(), rng=1, durable_path=path)
        engine.add_task(make_task(0))
        engine.close()
        with pytest.raises(ValueError, match="already holds a session"):
            AssignmentEngine(solver=GreedySolver(), rng=1, durable_path=path)

    def test_durable_requires_deterministic_rng(self, tmp_path):
        with pytest.raises(ValueError, match="deterministic rng"):
            AssignmentEngine(
                solver=GreedySolver(), rng=None, durable_path=tmp_path / "s.db"
            )

    def test_snapshot_cadence(self, tmp_path):
        engine = AssignmentEngine(
            solver=GreedySolver(),
            rng=1,
            durable_path=tmp_path / "s.db",
            durable_snapshot_every=2,
        )
        seed_population(engine, num_tasks=4, num_workers=8)
        assert engine.durable.num_snapshots() == 1  # snapshot zero
        for k in range(4):
            engine.epoch(float(k))
        assert engine.durable.num_snapshots() == 3
        engine.close()

    def test_epoch_history_analytics(self, tmp_path):
        engine = AssignmentEngine(
            solver=GreedySolver(), rng=1, durable_path=tmp_path / "s.db"
        )
        seed_population(engine, num_tasks=4, num_workers=8)
        first = engine.epoch(0.0)
        engine.epoch(1.0)
        history = engine.durable.epoch_history()
        assert [h["now"] for h in history] == [0.0, 1.0]
        assert history[0]["dispatch"] == sorted(
            [w, t] for w, t in first.dispatch.items()
        )
        assert history[0]["objective"] == [
            first.objective.min_reliability,
            first.objective.total_std,
        ]
        engine.close()

    def test_restore_checks_solver_class(self, tmp_path):
        path = tmp_path / "s.db"
        engine = AssignmentEngine(solver=GreedySolver(), rng=1, durable_path=path)
        engine.close()
        with pytest.raises(ValueError, match="GreedySolver"):
            restore_engine(path, solver=SamplingSolver(num_samples=4))


# ---------------------------------------------------------------------- #
# Inclusive-deadline boundary across snapshot/restore
# ---------------------------------------------------------------------- #


class TestDeadlineBoundary:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_restore_at_deadline_instant_keeps_task_live(self, backend, tmp_path):
        # A task whose window closes exactly at the snapshot instant must
        # survive the restore (``expired_at`` is ``now > end``: inclusive
        # deadline) and then expire on the next tick exactly like the
        # uninterrupted engine — same plans, same expiry sweep.
        deadline = 2.0

        def build(path=None):
            engine = AssignmentEngine(
                solver=GreedySolver(),
                rng=1,
                backend=backend,
                durable_path=path,
                durable_snapshot_every=1,
            )
            seed_population(engine, num_tasks=6, num_workers=12, end_lo=6.0)
            engine.add_task(make_task(99, x=0.5, y=0.5, end=deadline))
            return engine

        live = build()
        live_at = live.epoch(deadline)  # snapshot-every=1 twin snapshots here
        live_after = live.epoch(deadline + 1.0)

        path = tmp_path / "boundary.db"
        durable = build(path)
        at = durable.epoch(deadline)
        assert sorted(at.dispatch.items()) == sorted(live_at.dispatch.items())
        assert 99 in durable.tasks  # inclusive: end == now is still live
        del durable  # kill exactly at the deadline instant

        restored = restore_engine(path, solver=GreedySolver())
        assert 99 in restored.tasks, (
            "restore at the deadline instant must not expire the task early"
        )
        after = restored.epoch(deadline + 1.0)
        assert 99 in after.expired and 99 in live_after.expired
        assert sorted(after.dispatch.items()) == sorted(live_after.dispatch.items())
        restored.close()


# ---------------------------------------------------------------------- #
# Kill-and-recover differentials (the replay contract)
# ---------------------------------------------------------------------- #


@pytest.mark.churn
class TestKillAndRecover:
    EPOCHS = 6
    KILL_AFTER = 3

    def run_reference(self, make_engine):
        engine = make_engine(None)
        seed_population(engine)
        plans = drive(engine, ScriptedChurn(), self.EPOCHS)
        counters = engine.metrics.counters()
        engine.close()
        return plans, counters

    def run_killed_and_recovered(self, make_engine, path, solver_factory):
        engine = make_engine(path)
        seed_population(engine)
        churn = ScriptedChurn()
        plans = drive(engine, churn, self.KILL_AFTER)
        del engine  # crash: no close(), no flush beyond the WAL

        recovered = restore_engine(path, solver=solver_factory())
        for k in range(self.KILL_AFTER, self.EPOCHS):
            churn.step(recovered, k)
            result = recovered.epoch(float(k))
            plans.append((sorted(result.dispatch.items()), result.mode))
        counters = recovered.metrics.counters()
        recovered.close()
        return plans, counters

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("solve_mode", ["full", "warm"])
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_recovered_plans_bit_identical(
        self, backend, solve_mode, num_shards, tmp_path
    ):
        solver_factory = GreedySolver

        def make_engine(path):
            kwargs = dict(
                solver=solver_factory(),
                rng=9,
                backend=backend,
                solve_mode=solve_mode,
                durable_path=path,
                durable_snapshot_every=2,
            )
            if num_shards > 1:
                return ShardedAssignmentEngine(num_shards=num_shards, **kwargs)
            return AssignmentEngine(**kwargs)

        reference_plans, reference_counters = self.run_reference(make_engine)
        recovered_plans, recovered_counters = self.run_killed_and_recovered(
            make_engine, tmp_path / "kill.db", solver_factory
        )
        assert recovered_plans == reference_plans
        assert recovered_counters == reference_counters
        if solve_mode == "warm":
            assert any(mode == "warm" for _, mode in recovered_plans[
                self.KILL_AFTER :
            ]), "warm repair must survive recovery (plan is in the snapshot)"

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_sampling_stream_position_survives_recovery(self, backend, tmp_path):
        # SAMPLING with a persistent Generator: every solve consumes one
        # ``substream_base_seed`` draw, so plan equality across the kill
        # point proves the stream position (not just the seed) survived.
        def solver_factory():
            return SamplingSolver(num_samples=16)

        def make_engine(path):
            return AssignmentEngine(
                solver=solver_factory(),
                rng=np.random.default_rng(31),
                backend=backend,
                durable_path=path,
                durable_snapshot_every=2,
            )

        reference_plans, reference_counters = self.run_reference(make_engine)
        recovered_plans, recovered_counters = self.run_killed_and_recovered(
            make_engine, tmp_path / "sampling.db", solver_factory
        )
        assert recovered_plans == reference_plans
        assert recovered_counters == reference_counters

    def test_double_recovery_continues_the_same_log(self, tmp_path):
        # Recover, continue, crash again, recover again: the second
        # recovery replays events the *first* recovery appended.
        path = tmp_path / "twice.db"
        engine = AssignmentEngine(
            solver=GreedySolver(), rng=9, durable_path=path, durable_snapshot_every=4
        )
        seed_population(engine)
        churn = ScriptedChurn()
        plans = drive(engine, churn, 2)
        del engine
        once = restore_engine(path, solver=GreedySolver())
        plans += drive(once, churn, 4, start=2)
        del once
        twice = restore_engine(path, solver=GreedySolver())
        plans += drive(twice, churn, 6, start=4)

        reference = AssignmentEngine(solver=GreedySolver(), rng=9)
        seed_population(reference)
        assert plans == drive(reference, ScriptedChurn(), 6)
        twice.close()

    def test_session_facade_restore(self, tmp_path):
        path = tmp_path / "session.db"
        session = CrowdsourcingSession(
            solver=GreedySolver(), rng=3, durable_path=path
        )
        session.add_task(make_task(0, end=9.0))
        session.add_worker(make_worker(0, x=0.4, y=0.5))
        first = session.reassign(0.0)
        del session
        recovered = CrowdsourcingSession.restore(path, solver=GreedySolver())
        assert sorted(recovered.engine.assignment.pairs()) == sorted(
            first.assignment.pairs()
        )
        again = recovered.reassign(1.0)
        assert again.num_tasks == 1
        recovered.close()


# ---------------------------------------------------------------------- #
# Pinned / forbidden epoch arguments round-trip through the marker
# ---------------------------------------------------------------------- #


class TestEpochMarkerArguments:
    def test_pinned_and_forbidden_replay(self, tmp_path):
        def run(path):
            engine = AssignmentEngine(
                solver=GreedySolver(), rng=5, durable_path=path
            )
            seed_population(engine, num_tasks=5, num_workers=10)
            pinned = {0: [WorkerProfile(77, angle=1.25, arrival=0.5, confidence=0.9)]}
            forbidden = {(2, 1), (3, 0)}
            engine.epoch(0.0, pinned=pinned, forbidden=forbidden)
            second = engine.epoch(1.0, pinned=pinned, forbidden=forbidden)
            return engine, sorted(second.dispatch.items())

        live, live_plan = run(None)
        durable, durable_plan = run(tmp_path / "pinned.db")
        assert durable_plan == live_plan
        del durable

        restored = restore_engine(tmp_path / "pinned.db", solver=GreedySolver())
        assert sorted(restored.assignment.pairs()) == sorted(
            live.assignment.pairs()
        )
        restored.close()


# ---------------------------------------------------------------------- #
# Log compaction
# ---------------------------------------------------------------------- #


class TestCompaction:
    def test_compact_requires_a_snapshot(self, tmp_path):
        with DurableLog(tmp_path / "virgin.db") as log:
            log.append_events([("noop", 0.0, {})])
            with pytest.raises(ValueError, match="without a snapshot"):
                log.compact()
            with pytest.raises(ValueError, match="retain_snapshots"):
                log.compact(retain_snapshots=0)

    def test_compact_truncates_redundant_prefix(self, tmp_path):
        path = tmp_path / "compact.db"
        engine = AssignmentEngine(
            solver=GreedySolver(), rng=9, durable_path=path, durable_snapshot_every=2
        )
        seed_population(engine)
        drive(engine, ScriptedChurn(), 6)
        log = engine.durable
        assert log.num_snapshots() >= 2
        before_last = log.last_seq()
        stats = log.compact(retain_snapshots=1, vacuum=True)
        assert stats["events_deleted"] > 0
        assert stats["snapshots_deleted"] >= 1
        assert stats["snapshots_retained"] == 1
        assert stats["vacuumed"] is True
        assert log.num_snapshots() == 1
        assert log.stats["compactions"] == 1
        # Only the post-snapshot tail survives, and AUTOINCREMENT means a
        # post-compaction append never reuses a truncated seq.
        surviving = [seq for seq, *_ in log.tail(0)]
        assert all(seq > stats["cutoff_seq"] for seq in surviving)
        log.append_events([("noop", 6.0, {})])
        assert log.last_seq() > before_last
        # Compacting again is a no-op (everything redundant is gone).
        again = log.compact(retain_snapshots=1)
        assert again["events_deleted"] == 0
        assert again["snapshots_deleted"] == 0
        engine.close()

    def test_restore_after_compaction_bit_exact(self, tmp_path):
        path = tmp_path / "compacted.db"
        engine = AssignmentEngine(
            solver=GreedySolver(), rng=9, durable_path=path, durable_snapshot_every=2
        )
        seed_population(engine)
        churn = ScriptedChurn()
        plans = drive(engine, churn, 5)
        engine.durable.compact(retain_snapshots=1, vacuum=True)
        del engine
        recovered = restore_engine(path, solver=GreedySolver())
        plans += drive(recovered, churn, 8, start=5)
        recovered_counters = recovered.metrics.counters()
        recovered.close()

        reference = AssignmentEngine(solver=GreedySolver(), rng=9)
        seed_population(reference)
        reference_plans = drive(reference, ScriptedChurn(), 8)
        assert plans == reference_plans
        assert recovered_counters == reference.metrics.counters()


# ---------------------------------------------------------------------- #
# Solver constructor-parameter fingerprints
# ---------------------------------------------------------------------- #


class TestSolverConfigGuard:
    def test_greedy_flag_mismatch_raises(self, tmp_path):
        path = tmp_path / "greedy.db"
        AssignmentEngine(solver=GreedySolver(), rng=1, durable_path=path).close()
        with pytest.raises(ValueError, match="configured as"):
            restore_engine(path, solver=GreedySolver(use_pruning=False))
        with pytest.raises(ValueError, match="configured as"):
            restore_engine(path, solver=GreedySolver(backend="numpy"))

    def test_sampling_params_mismatch_raises(self, tmp_path):
        path = tmp_path / "sampling.db"
        AssignmentEngine(
            solver=SamplingSolver(num_samples=4), rng=1, durable_path=path
        ).close()
        with pytest.raises(ValueError, match="configured as"):
            restore_engine(path, solver=SamplingSolver(num_samples=8))

    def test_matching_config_restores(self, tmp_path):
        path = tmp_path / "match.db"
        AssignmentEngine(
            solver=GreedySolver(use_pruning=False), rng=1, durable_path=path
        ).close()
        restored = restore_engine(path, solver=GreedySolver(use_pruning=False))
        restored.close()

    def test_config_is_fingerprinted(self, tmp_path):
        path = tmp_path / "meta.db"
        engine = AssignmentEngine(
            solver=SamplingSolver(num_samples=4), rng=1, durable_path=path
        )
        recorded = engine.durable.meta()["solver_config"]
        assert recorded == solver_config(engine.solver)
        assert recorded["num_samples"] == 4
        engine.close()

    def test_legacy_log_without_fingerprint_still_restores(self, tmp_path):
        # Logs written before the fingerprint keep the class-name-only
        # check: a differing flag slips through, but restore must work.
        path = tmp_path / "legacy.db"
        AssignmentEngine(solver=GreedySolver(), rng=1, durable_path=path).close()
        with DurableLog(path) as log:
            log._conn.execute(
                "DELETE FROM meta WHERE key = ?", ("solver_config",)
            )
            log._conn.commit()
        restored = restore_engine(path, solver=GreedySolver(use_pruning=False))
        restored.close()


# ---------------------------------------------------------------------- #
# Elastic engine: topology trajectory through the WAL
# ---------------------------------------------------------------------- #


@pytest.mark.churn
class TestElasticKillAndRecover:
    """Crash-after-reshape recovery for the elastic sharded engine.

    The WAL logs every rebalance as an explicit event before its epoch
    marker, so ``restore_engine`` must replay the exact split/merge/
    migrate trajectory (the snapshot carries the ownership table for the
    compacted prefix) and the recovered engine — same deterministic
    policy, same loads — must keep making the *same* reshape decisions
    for the remaining epochs.
    """

    EPOCHS = 8
    KILL_AFTER = 5  # late enough that the aggressive policy has fired

    def make_engine(self, path, tmp=None):
        return ElasticShardedAssignmentEngine(
            solver=GreedySolver(),
            rng=9,
            backend="numpy",
            num_shards=4,
            rebalance=RebalancePolicy(every=1, imbalance=1.2, min_workers=4),
            durable_path=path,
            durable_snapshot_every=2,
        )

    def run_reference(self):
        engine = self.make_engine(None)
        seed_population(engine, num_tasks=6, num_workers=12, seed=5)
        plans = drive(engine, DRIFT_SCENARIOS["marching"](), self.EPOCHS)
        out = (plans, engine.metrics.counters(), engine.shard_map.topology())
        engine.close()
        return out

    def test_recovery_replays_the_reshape_trajectory(self, tmp_path):
        path = tmp_path / "elastic.db"
        engine = self.make_engine(path)
        seed_population(engine, num_tasks=6, num_workers=12, seed=5)
        churn = DRIFT_SCENARIOS["marching"]()
        plans = drive(engine, churn, self.KILL_AFTER)
        ops_before_crash = engine.elastic_stats["rebalance_ops"]
        topology_at_crash = engine.shard_map.topology()
        assert ops_before_crash >= 1, "scenario must reshape before the kill"
        del engine  # crash: no close(), nothing beyond the WAL

        recovered = restore_engine(path, solver=GreedySolver())
        assert isinstance(recovered, ElasticShardedAssignmentEngine)
        # Replay reproduced the topology trajectory, not just entity state.
        assert recovered.shard_map.topology() == topology_at_crash
        # (elastic_stats is shipping *accounting*, not durable state: it
        # restarts at the last snapshot and only counts the tail replay.)
        plans += drive(recovered, churn, self.EPOCHS, start=self.KILL_AFTER)

        reference_plans, reference_counters, reference_topology = (
            self.run_reference()
        )
        assert plans == reference_plans
        assert recovered.metrics.counters() == reference_counters
        assert recovered.shard_map.topology() == reference_topology
        recovered.close()

    def test_double_recovery_keeps_the_topology_trajectory(self, tmp_path):
        path = tmp_path / "elastic-twice.db"
        engine = self.make_engine(path)
        seed_population(engine, num_tasks=6, num_workers=12, seed=5)
        churn = DRIFT_SCENARIOS["marching"]()
        plans = drive(engine, churn, 3)
        del engine

        once = restore_engine(path, solver=GreedySolver())
        plans += drive(once, churn, 6, start=3)
        del once  # second crash: replays events the first recovery wrote

        twice = restore_engine(path, solver=GreedySolver())
        plans += drive(twice, churn, self.EPOCHS, start=6)

        reference_plans, reference_counters, reference_topology = (
            self.run_reference()
        )
        assert plans == reference_plans
        assert twice.metrics.counters() == reference_counters
        assert twice.shard_map.topology() == reference_topology
        twice.close()
