"""Tests for the online CrowdsourcingSession facade."""

import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.dynamic import CrowdsourcingSession
from tests.conftest import make_task, make_worker


def seeded_population(seed=3, m=15, n=25):
    import numpy as np

    config = ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n)
    rng = np.random.default_rng(seed)
    return generate_tasks(config, rng), generate_workers(config, rng)


class TestChurn:
    def test_add_remove_task(self):
        session = CrowdsourcingSession()
        task = make_task(0)
        session.add_task(task)
        assert session.num_tasks == 1
        assert session.remove_task(0) == task
        assert session.num_tasks == 0

    def test_duplicate_ids_rejected(self):
        session = CrowdsourcingSession()
        session.add_task(make_task(0))
        with pytest.raises(ValueError):
            session.add_task(make_task(0))
        session.add_worker(make_worker(0))
        with pytest.raises(ValueError):
            session.add_worker(make_worker(0))

    def test_expire_tasks(self):
        session = CrowdsourcingSession()
        session.add_task(make_task(0, start=0.0, end=1.0))
        session.add_task(make_task(1, start=0.0, end=5.0))
        expired = session.expire_tasks(now=2.0)
        assert expired == [0]
        assert session.num_tasks == 1
        assert session.stats.tasks_expired == 1

    def test_remove_task_frees_workers(self):
        session = CrowdsourcingSession(solver=GreedySolver())
        session.add_task(make_task(0, x=0.5, y=0.5))
        session.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        session.reassign(now=0.0)
        assert session.assignment_of(0) == 0
        session.remove_task(0)
        assert session.assignment_of(0) is None

    def test_remove_worker_clears_assignment(self):
        session = CrowdsourcingSession(solver=GreedySolver())
        session.add_task(make_task(0, x=0.5, y=0.5))
        session.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        session.reassign(now=0.0)
        session.remove_worker(0)
        assert session.workers_on(0) == frozenset()

    def test_update_worker_relocates(self):
        session = CrowdsourcingSession()
        worker = make_worker(0, x=0.1, y=0.1)
        session.add_worker(worker)
        moved = worker.moved_to(worker.location.translated(0.5, 0.5), 1.0)
        session.update_worker(moved)
        assert session.num_workers == 1
        assert session.stats.workers_added == 1  # net counters unchanged


class TestReassignment:
    def test_reassign_produces_feasible_assignment(self):
        tasks, workers = seeded_population()
        session = CrowdsourcingSession(solver=SamplingSolver(num_samples=20), rng=5)
        for task in tasks:
            session.add_task(task)
        for worker in workers:
            session.add_worker(worker)
        outcome = session.reassign(now=0.0)
        assert outcome.num_tasks == len(tasks)
        assert outcome.num_workers == len(workers)
        problem = session.current_problem()
        for task_id, worker_id in outcome.assignment.pairs():
            assert problem.is_valid_pair(task_id, worker_id)

    def test_index_pairs_match_direct_problem(self):
        from repro.core.problem import RdbscProblem

        tasks, workers = seeded_population(7)
        session = CrowdsourcingSession()
        for task in tasks:
            session.add_task(task)
        for worker in workers:
            session.add_worker(worker)
        via_session = session.current_problem()
        direct = RdbscProblem(tasks, workers, session.validity)
        assert via_session.num_pairs == direct.num_pairs

    def test_reassign_after_churn(self):
        tasks, workers = seeded_population(9)
        session = CrowdsourcingSession(solver=GreedySolver(), rng=1)
        for task in tasks[:10]:
            session.add_task(task)
        for worker in workers:
            session.add_worker(worker)
        first = session.reassign(now=0.0)
        # Tasks complete, new ones arrive, a worker leaves.
        session.remove_task(tasks[0].task_id)
        session.add_task(tasks[10])
        session.remove_worker(workers[0].worker_id)
        second = session.reassign(now=0.0)
        assert session.stats.reassignments == 2
        assert second.num_workers == len(workers) - 1

    def test_evaluate_current_drops_stale_pairs(self):
        session = CrowdsourcingSession(solver=GreedySolver())
        session.add_task(make_task(0, x=0.5, y=0.5, start=0.0, end=10.0))
        session.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5, confidence=0.9))
        session.reassign(now=0.0)
        value_before = session.evaluate_current()
        assert value_before.min_reliability == pytest.approx(0.9)
        # The assigned task expires; evaluation must not crash and must
        # report the empty objective.
        session._tasks.pop(0)
        session.grid.remove_task(0)
        value_after = session.evaluate_current()
        assert value_after.min_reliability == 0.0

    def test_stats_counters(self):
        session = CrowdsourcingSession()
        session.add_task(make_task(0))
        session.add_worker(make_worker(0, x=0.45, y=0.5))
        session.reassign(now=0.0)
        assert session.stats.tasks_added == 1
        assert session.stats.workers_added == 1
        assert session.stats.reassignments == 1
        assert session.stats.pairs_retrieved >= 0
