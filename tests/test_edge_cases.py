"""Edge-case tests across subsystems: degenerate inputs, determinism."""

import math

import pytest

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    SamplingSolver,
)
from repro.algorithms.merge import sa_merge
from repro.core.assignment import Assignment
from repro.core.expected import _success_tail_probabilities, expected_std
from repro.core.diversity import WorkerProfile
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_problem
from tests.conftest import make_task, make_worker


class TestSuccessTailProbabilities:
    def test_empty(self):
        assert _success_tail_probabilities([]) == (0.0, 0.0)

    def test_single(self):
        at_least_one, at_least_two = _success_tail_probabilities([0.7])
        assert at_least_one == pytest.approx(0.7)
        assert at_least_two == 0.0

    def test_pair(self):
        at_least_one, at_least_two = _success_tail_probabilities([0.5, 0.5])
        assert at_least_one == pytest.approx(0.75)
        assert at_least_two == pytest.approx(0.25)

    def test_certain_workers(self):
        at_least_one, at_least_two = _success_tail_probabilities([1.0, 1.0])
        assert at_least_one == pytest.approx(1.0)
        assert at_least_two == pytest.approx(1.0)


class TestDegenerateTasks:
    def test_zero_duration_task_std_is_spatial_only(self):
        task = make_task(start=5.0, end=5.0, beta=0.5)
        profiles = [
            WorkerProfile(0, 0.0, 5.0, 1.0),
            WorkerProfile(1, math.pi, 5.0, 1.0),
        ]
        # TD contributes nothing on a zero-length window.
        value = expected_std(task, profiles)
        assert value == pytest.approx(0.5 * math.log(2.0))

    def test_all_certain_workers(self):
        task = make_task(start=0.0, end=10.0, beta=1.0)
        profiles = [WorkerProfile(i, i * 1.0, 5.0, 1.0) for i in range(4)]
        from repro.core.diversity import std

        assert expected_std(task, profiles) == pytest.approx(std(task, profiles))

    def test_all_hopeless_workers(self):
        task = make_task(start=0.0, end=10.0)
        profiles = [WorkerProfile(i, i * 1.0, 5.0, 0.0) for i in range(4)]
        assert expected_std(task, profiles) == 0.0


class TestSolversOnDegenerateInstances:
    def test_one_task_many_workers(self):
        task = make_task(0, x=0.5, y=0.5, start=0.0, end=10.0)
        workers = [
            make_worker(j, x=0.1 + 0.05 * j, y=0.3, velocity=0.5) for j in range(8)
        ]
        problem = RdbscProblem([task], workers)
        for solver in (GreedySolver(), SamplingSolver(num_samples=10)):
            result = solver.solve(problem, rng=1)
            assert len(result.assignment.workers_for(0)) == 8

    def test_many_tasks_one_worker(self):
        tasks = [make_task(i, x=0.5 + 0.02 * i, y=0.5) for i in range(6)]
        workers = [make_worker(0, x=0.4, y=0.5, velocity=1.0)]
        problem = RdbscProblem(tasks, workers)
        result = GreedySolver().solve(problem, rng=1)
        assert len(result.assignment) == 1

    def test_dc_on_single_task_problem(self):
        task = make_task(0, x=0.5, y=0.5)
        workers = [make_worker(0, x=0.4, y=0.5, velocity=0.5)]
        problem = RdbscProblem([task], workers)
        result = DivideConquerSolver(gamma=4).solve(problem, rng=1)
        assert result.assignment.task_of(0) == 0

    def test_workers_all_over_boundary_coordinates(self):
        tasks = [make_task(0, x=0.0, y=0.0), make_task(1, x=1.0, y=1.0)]
        workers = [
            make_worker(0, x=0.0, y=0.0, velocity=0.5),
            make_worker(1, x=1.0, y=1.0, velocity=0.5),
        ]
        problem = RdbscProblem(tasks, workers)
        result = GreedySolver().solve(problem, rng=0)
        assert len(result.assignment) == 2


class TestMergeDeterminism:
    def test_same_inputs_same_merge(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=10, num_workers=20), 3
        )
        from repro.algorithms.partition import bg_partition

        part = bg_partition(problem, rng=0)
        sub1 = problem.restricted_to(part.task_ids_1, part.worker_ids_1)
        sub2 = problem.restricted_to(part.task_ids_2, part.worker_ids_2)
        a1 = SamplingSolver(num_samples=10).solve(sub1, rng=1).assignment
        a2 = SamplingSolver(num_samples=10).solve(sub2, rng=2).assignment
        merged_a, _ = sa_merge(problem, a1, a2, part.conflicting_worker_ids)
        merged_b, _ = sa_merge(problem, a1, a2, part.conflicting_worker_ids)
        assert merged_a == merged_b

    def test_max_group_size_one_forces_greedy_everywhere(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=10, num_workers=30), 5
        )
        result = DivideConquerSolver(gamma=4, max_group_size=1).solve(problem, rng=1)
        # Still feasible with the most restrictive merge budget.
        for task_id, worker_id in result.assignment.pairs():
            assert problem.is_valid_pair(task_id, worker_id)


class TestProblemEdge:
    def test_empty_problem_population(self):
        problem = RdbscProblem([], [])
        assert problem.log_population_size() == 0.0
        assert problem.valid_pairs() == []

    def test_workers_without_tasks(self):
        problem = RdbscProblem([], [make_worker(0)])
        assert problem.degree(0) == 0
        result = GreedySolver().solve(problem)
        assert len(result.assignment) == 0

    def test_tasks_without_workers(self):
        problem = RdbscProblem([make_task(0)], [])
        result = SamplingSolver(num_samples=3).solve(problem, rng=0)
        assert result.objective.min_reliability == 0.0
