"""Elastic-shard differential equivalence under adversarial load drift.

The contract under test is the standing invariant of
:class:`~repro.engine.elastic.ElasticShardedAssignmentEngine`: for any
shard count, any rebalance schedule (including none, and including
aggressive split/merge/migrate churn) and either resident executor, the
per-epoch plans *and* the :meth:`EngineMetrics.counters` lifetime
counters are bit-identical to the single-shard engine on the same churn
stream.  The adversarial drift scenarios (``DRIFT_SCENARIOS`` in
``conftest``) are built to provoke reshapes: a marching population that
walks load across block boundaries, flash-crowd hotspots that spike and
drain shards, and an oscillating cohort that punishes a rebalancer for
chasing the current hot block.

Alongside the differential families: Hypothesis properties for the two
load-bearing mechanisms — reshape interleavings preserve the
cell-partition invariant (and plans), and diff-build ∘ diff-apply is
identity against a full-resync rebuild — plus the diff-protocol failure
modes (stale resident → resync heal).  All differential classes carry
the ``churn`` marker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GreedySolver
from repro.engine import (
    AssignmentEngine,
    ElasticShardedAssignmentEngine,
    RebalancePolicy,
    ShardedAssignmentEngine,
)
from repro.engine.elastic import ResidentShard
from repro.geometry.points import Point
from tests.conftest import (
    DRIFT_SCENARIOS,
    make_task,
    make_worker,
    drive,
    seed_population,
)

ETA = 0.125
EPOCHS = 8


def pair_key(pairs):
    """Canonical, rounding-sensitive view of a pair list."""
    return sorted((p.task_id, p.worker_id, p.arrival) for p in pairs)


def aggressive_policy():
    """A reshape-happy policy: decide every epoch, low imbalance bar."""
    return RebalancePolicy(every=1, imbalance=1.2, min_workers=4)


def make_elastic(num_shards, backend="numpy", solve_mode="full", **kwargs):
    kwargs.setdefault("rebalance", aggressive_policy())
    return ElasticShardedAssignmentEngine(
        solver=GreedySolver(),
        eta=ETA,
        rng=3,
        backend=backend,
        solve_mode=solve_mode,
        num_shards=num_shards,
        **kwargs,
    )


def run_scenario(engine, scenario, epochs=EPOCHS):
    """Seed the shared base population, then drive the drift trace."""
    seed_population(engine, num_tasks=6, num_workers=12, seed=5)
    plans = drive(engine, DRIFT_SCENARIOS[scenario](), epochs)
    return plans, engine.metrics.counters()


_REFERENCE_CACHE = {}


def reference_run(scenario, backend="numpy", solve_mode="full", epochs=EPOCHS):
    """Memoised single-shard reference (plans, counters) per axis combo."""
    key = (scenario, backend, solve_mode, epochs)
    if key not in _REFERENCE_CACHE:
        engine = AssignmentEngine(
            solver=GreedySolver(),
            eta=ETA,
            rng=3,
            backend=backend,
            solve_mode=solve_mode,
        )
        _REFERENCE_CACHE[key] = run_scenario(engine, scenario, epochs)
    return _REFERENCE_CACHE[key]


# --------------------------------------------------------------------- #
# Adversarial-churn differential suite
# --------------------------------------------------------------------- #


@pytest.mark.churn
class TestElasticDifferential:
    @pytest.mark.parametrize("scenario", sorted(DRIFT_SCENARIOS))
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_matches_single_engine_under_drift(self, scenario, num_shards):
        plans, counters = run_scenario(make_elastic(num_shards), scenario)
        assert (plans, counters) == reference_run(scenario)

    @pytest.mark.parametrize(
        "backend,solve_mode",
        [("python", "full"), ("python", "warm"), ("numpy", "warm")],
    )
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_backend_and_mode_matrix(self, backend, solve_mode, num_shards):
        # numpy/full at every shard count is covered above; together the
        # two tests sweep {python,numpy} x {full,warm} x {1,2,4}.
        engine = make_elastic(num_shards, backend=backend, solve_mode=solve_mode)
        plans, counters = run_scenario(engine, "marching")
        assert (plans, counters) == reference_run(
            "marching", backend=backend, solve_mode=solve_mode
        )

    def test_matches_static_sharded_twin(self):
        # The static-vs-elastic axis head to head: same event stream into
        # the batch-shipping sharded engine and the diff-shipping elastic
        # one (with live reshapes), identical plans out.
        static = ShardedAssignmentEngine(
            solver=GreedySolver(), eta=ETA, rng=3, backend="numpy", num_shards=4
        )
        elastic = make_elastic(4)
        assert run_scenario(static, "hotspot") == run_scenario(elastic, "hotspot")

    def test_marching_drift_provokes_rebalances(self):
        engine = make_elastic(4)
        plans, counters = run_scenario(engine, "marching", epochs=10)
        assert engine.elastic_stats["rebalance_ops"] >= 2
        assert (plans, counters) == reference_run("marching", epochs=10)

    def test_process_executor_differential(self):
        engine = make_elastic(2, solve_mode="warm", executor="process")
        try:
            plans, counters = run_scenario(engine, "marching")
        finally:
            engine.close()
        assert (plans, counters) == reference_run("marching", solve_mode="warm")

    def test_full_reship_mode_is_identical(self):
        # diff_shipping=False re-ships every resident's full state each
        # epoch — the honest baseline the benchmark compares against.
        engine = make_elastic(4, diff_shipping=False)
        plans, counters = run_scenario(engine, "oscillating")
        assert (plans, counters) == reference_run("oscillating")
        assert engine.elastic_stats["resyncs"] == 0

    def test_diff_shipping_beats_full_ship_under_drift(self):
        engine = make_elastic(4)
        run_scenario(engine, "marching", epochs=10)
        stats = engine.elastic_stats
        assert 0 < stats["diff_bytes"] < stats["full_bytes"]

    def test_stale_resident_heals_via_resync(self):
        # Corrupt one resident's protocol state mid-run: the version
        # check flags it, the engine ships a full resync on the same
        # fan-out, and the plan stream never notices.
        engine = make_elastic(4)
        seed_population(engine, num_tasks=6, num_workers=12, seed=5)
        churn = DRIFT_SCENARIOS["hotspot"]()
        plans = drive(engine, churn, 4)
        engine.executor.residents[0].version += 7
        plans += drive(engine, churn, EPOCHS, start=4)
        assert engine.elastic_stats["resyncs"] >= 1
        reference_plans, reference_counters = reference_run("hotspot")
        assert plans == reference_plans
        assert engine.metrics.counters() == reference_counters

    def test_serve_resume_adopts_an_elastic_log(self, tmp_path):
        # The service tier's resume path must come back as the elastic
        # engine — topology trajectory included — because restore_engine
        # dispatches on the durable meta row.
        from repro.serve import AssignmentServer

        path = tmp_path / "elastic-serve.db"
        engine = ElasticShardedAssignmentEngine(
            solver=GreedySolver(),
            eta=ETA,
            rng=3,
            backend="numpy",
            num_shards=4,
            rebalance=aggressive_policy(),
            durable_path=path,
            durable_snapshot_every=2,
        )
        seed_population(engine, num_tasks=6, num_workers=12, seed=5)
        churn = DRIFT_SCENARIOS["marching"]()
        plans = drive(engine, churn, 4)
        topology = engine.shard_map.topology()
        del engine  # crash: no close(), nothing beyond the WAL

        server = AssignmentServer.resume(path, solver=GreedySolver())
        resumed = server.engine
        assert isinstance(resumed, ElasticShardedAssignmentEngine)
        assert resumed.shard_map.topology() == topology
        plans += drive(resumed, churn, EPOCHS, start=4)
        reference_plans, reference_counters = reference_run("marching")
        assert plans == reference_plans
        assert resumed.metrics.counters() == reference_counters
        resumed.close()

    def test_drifted_fingerprint_heals_via_resync(self):
        # Same heal path, triggered by state drift rather than a version
        # gap: the resident's fingerprint no longer matches the engine's.
        engine = make_elastic(4)
        seed_population(engine, num_tasks=6, num_workers=12, seed=5)
        churn = DRIFT_SCENARIOS["marching"]()
        plans = drive(engine, churn, 4)
        engine.executor.residents[1].fingerprint ^= 0xDEADBEEF
        plans += drive(engine, churn, EPOCHS, start=4)
        assert engine.elastic_stats["resyncs"] >= 1
        reference_plans, _ = reference_run("marching")
        assert plans == reference_plans


# --------------------------------------------------------------------- #
# Hypothesis properties
# --------------------------------------------------------------------- #


def _reshape_candidates(shard_map):
    """Every currently-valid single reshape op, deterministically ordered."""
    active = [s for s in range(shard_map.num_shards) if not shard_map.is_dormant(s)]
    dormant = [s for s in range(shard_map.num_shards) if shard_map.is_dormant(s)]
    ops = []
    for donor in active:
        cells = shard_map.owned_cells(donor)
        if len(cells) >= 2:
            for target in dormant:
                ops.append(
                    {
                        "kind": "split",
                        "from": donor,
                        "to": target,
                        "cells": [list(c) for c in cells[: len(cells) // 2]],
                    }
                )
            for target in active:
                if target != donor:
                    ops.append(
                        {
                            "kind": "migrate",
                            "from": donor,
                            "to": target,
                            "cells": [list(cells[0])],
                        }
                    )
        if len(active) >= 2:
            for target in active:
                if target != donor:
                    ops.append(
                        {
                            "kind": "merge",
                            "from": donor,
                            "to": target,
                            "cells": [list(c) for c in cells],
                        }
                    )
    return ops


class TestElasticProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=6))
    def test_reshape_interleavings_preserve_partition_and_pairs(self, draws):
        # Any interleaving of valid split/merge/migrate ops keeps the
        # cell ownership table a partition, keeps every entity routed to
        # its owner, and leaves the merged pair set bit-identical to the
        # single-shard engine's.
        engine = make_elastic(4, rebalance=None)
        seed_population(engine, num_tasks=6, num_workers=18, seed=5)
        reference = AssignmentEngine(
            solver=GreedySolver(), eta=ETA, rng=3, backend="numpy"
        )
        seed_population(reference, num_tasks=6, num_workers=18, seed=5)
        expected = pair_key(reference.current_pairs())

        shard_map = engine.shard_map
        total_cells = shard_map.n_cols**2
        for draw in draws:
            candidates = _reshape_candidates(shard_map)
            if not candidates:
                break
            engine.apply_rebalance([candidates[draw % len(candidates)]])

            owned = [shard_map.owned_cells(s) for s in range(shard_map.num_shards)]
            assert sum(len(cells) for cells in owned) == total_cells
            seen = set()
            for cells in owned:
                seen.update(cells)
            assert len(seen) == total_cells, "ownership must stay a partition"
            for worker_id, shard_id in engine._worker_shard.items():
                location = engine.workers[worker_id].location
                assert shard_map.shard_of_point(location) == shard_id
            assert pair_key(engine.current_pairs()) == expected

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=999),
            ),
            min_size=1,
            max_size=14,
        )
    )
    def test_diff_apply_of_diff_build_is_identity(self, script):
        # Drive arbitrary churn through the engine (residents advance by
        # incremental diffs), then rebuild a fresh resident per shard
        # from a full-resync diff: fingerprints and valid pairs agree,
        # so diff-apply ∘ diff-build == full rebuild.
        engine = make_elastic(2, rebalance=None)
        clock = 0.0
        for code, value in script:
            position = Point(
                ((value * 2654435761) % 1000) / 1000.0,
                ((value * 40503) % 1000) / 1000.0,
            )
            if code == 0:
                worker_id = 100 + value % 40
                if worker_id not in engine.workers:
                    engine.add_worker(
                        make_worker(
                            worker_id,
                            x=position.x,
                            y=position.y,
                            velocity=0.3,
                            confidence=0.8,
                        )
                    )
            elif code == 1 and engine.workers:
                worker_id = sorted(engine.workers)[value % len(engine.workers)]
                engine.update_worker(
                    engine.workers[worker_id].moved_to(position, clock)
                )
            elif code == 2 and engine.workers:
                worker_id = sorted(engine.workers)[value % len(engine.workers)]
                engine.remove_worker(worker_id)
            elif code == 3:
                task_id = 600 + value % 40
                if task_id not in engine.tasks:
                    engine.add_task(
                        make_task(task_id, x=position.x, y=position.y, end=90.0)
                    )
            elif code == 4 and engine.tasks:
                task_id = sorted(engine.tasks)[value % len(engine.tasks)]
                engine.withdraw_task(task_id)
            clock += 0.125
            engine.current_pairs()  # flush this batch as one diff fan-out

        for shard_id in range(2):
            resident = engine.executor.residents[shard_id]
            full = engine._build_full_diff(shard_id)
            fresh = ResidentShard(shard_id, ETA, engine.validity, backend="numpy")
            kind, version, _, _ = fresh.apply(full)
            assert kind == "ok"
            assert version == resident.version
            assert fresh.fingerprint == full.fingerprint == resident.fingerprint
            assert pair_key(fresh.grid.valid_pairs()) == pair_key(
                resident.grid.valid_pairs()
            )
