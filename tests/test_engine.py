"""Unit tests for the incremental assignment engine (events, scheduler,
epochs, metrics) and the expiry-boundary contract it shares with the
session, the grid and the platform simulator."""

import math

import pytest

from repro.algorithms import GreedySolver
from repro.core.diversity import WorkerProfile
from repro.core.validity import ValidityRule
from repro.engine import (
    AssignmentEngine,
    EpochTick,
    EventQueue,
    ExpireTasks,
    TaskArrive,
    TaskWithdraw,
    WorkerArrive,
    WorkerLeave,
    WorkerUpdate,
    epoch_ticks,
)
from repro.geometry.points import Point
from repro.platform_sim.events import TaskRecord
from tests.conftest import make_task, make_worker, populate_small


class TestEventQueue:
    def test_time_order(self):
        queue = EventQueue()
        queue.push(TaskArrive(time=2.0, task=make_task(2)))
        queue.push(TaskArrive(time=1.0, task=make_task(1)))
        queue.push(TaskArrive(time=3.0, task=make_task(3)))
        assert [e.time for e in queue.drain()] == [1.0, 2.0, 3.0]

    def test_churn_before_epoch_at_equal_time(self):
        queue = EventQueue()
        queue.push(EpochTick(time=1.0))
        queue.push(WorkerArrive(time=1.0, worker=make_worker(0)))
        events = list(queue.drain())
        assert isinstance(events[0], WorkerArrive)
        assert isinstance(events[1], EpochTick)

    def test_fifo_within_equal_time(self):
        queue = EventQueue()
        for task_id in range(5):
            queue.push(TaskArrive(time=1.0, task=make_task(task_id)))
        assert [e.task.task_id for e in queue.drain()] == list(range(5))

    def test_pop_until_and_next_time(self):
        queue = EventQueue([TaskArrive(time=t, task=make_task(int(t))) for t in (1.0, 2.0, 3.0)])
        assert queue.next_time == 1.0
        drained = list(queue.pop_until(2.0))
        assert [e.time for e in drained] == [1.0, 2.0]
        assert queue.next_time == 3.0
        assert len(queue) == 1

    def test_epoch_ticks(self):
        ticks = epoch_ticks(0.5, 2.0)
        assert [t.time for t in ticks] == [0.0, 0.5, 1.0, 1.5, 2.0]
        with pytest.raises(ValueError):
            epoch_ticks(0.0, 1.0)

    def test_epoch_ticks_horizon_rounding(self):
        # 0.1 accumulates floating-point error; the final tick must survive.
        ticks = epoch_ticks(0.1, 0.3)
        assert len(ticks) == 4


class TestEventApplication:
    def test_each_event_kind(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.apply(TaskArrive(time=0.0, task=make_task(0, end=5.0)))
        engine.apply(TaskArrive(time=0.0, task=make_task(1, end=0.5)))
        engine.apply(WorkerArrive(time=0.0, worker=make_worker(0, x=0.4, y=0.5)))
        assert engine.num_tasks == 2 and engine.num_workers == 1
        engine.apply(WorkerUpdate(time=0.5, worker=make_worker(0, x=0.45, y=0.5)))
        assert engine.workers[0].location.x == pytest.approx(0.45)
        engine.apply(ExpireTasks(time=1.0))
        assert engine.num_tasks == 1  # task 1 (end 0.5) expired
        engine.apply(TaskWithdraw(time=1.0, task_id=0))
        engine.apply(WorkerLeave(time=1.0, worker_id=0))
        assert engine.num_tasks == 0 and engine.num_workers == 0
        counts = engine.metrics.events
        assert counts["task_arrive"] == 2
        assert counts["task_expire"] == 1
        assert counts["task_withdraw"] == 1
        assert counts["worker_update"] == 1
        assert counts["worker_leave"] == 1

    def test_unknown_event_rejected(self):
        engine = AssignmentEngine()
        with pytest.raises(TypeError):
            engine.apply(object())

    def test_process_returns_epoch_results(self):
        engine = AssignmentEngine(solver=GreedySolver())
        queue = EventQueue()
        queue.push(TaskArrive(time=0.0, task=make_task(0, x=0.5, y=0.5)))
        queue.push(WorkerArrive(time=0.0, worker=make_worker(0, x=0.4, y=0.5, velocity=0.5)))
        queue.push(EpochTick(time=0.0))
        queue.push(EpochTick(time=1.0))
        results = engine.process(queue)
        assert len(results) == 2
        assert results[0].dispatch == {0: 0}
        assert engine.assignment_of(0) == 0


class TestBatchedApplication:
    def _stream(self, seed=31):
        """A mixed-kind stream with same-instant bursts."""
        import numpy as np

        rng = np.random.default_rng(seed)
        events = []
        for k in range(12):
            events.append(TaskArrive(time=0.0, task=make_task(
                k, x=float(rng.uniform()), y=float(rng.uniform()), end=8.0)))
        for k in range(25):
            events.append(WorkerArrive(time=0.0, worker=make_worker(
                k, x=float(rng.uniform()), y=float(rng.uniform()), velocity=0.3)))
        events.append(EpochTick(time=0.0))
        for k in range(20):
            events.append(WorkerUpdate(time=1.0, worker=make_worker(
                k % 25, x=float(rng.uniform()), y=float(rng.uniform()),
                velocity=0.3, depart_time=1.0)))
        events.append(TaskWithdraw(time=1.0, task_id=3))
        events.append(ExpireTasks(time=1.0))
        events.append(EpochTick(time=1.0))
        return events

    def test_pop_instant_groups_per_time_with_churn_first(self):
        queue = EventQueue(self._stream())
        first = queue.pop_instant()
        assert {event.time for event in first} == {0.0}
        assert isinstance(first[-1], EpochTick)
        assert not any(isinstance(e, EpochTick) for e in first[:-1])
        second = queue.pop_instant()
        assert {event.time for event in second} == {1.0}
        assert len(queue) == 0
        with pytest.raises(IndexError):
            queue.pop_instant()

    def test_drain_instants_equals_drain(self):
        events = self._stream()
        flat = [e for batch in EventQueue(events).drain_instants() for e in batch]
        assert flat == list(EventQueue(events).drain())

    def test_apply_batch_equals_per_event_application(self):
        """Batched per-instant application is behaviour-identical.

        Same-instant worker-update and task-arrive runs are grouped into
        single index calls (repeated ids split the run to stay
        last-wins); the resulting pair sets, assignments and objectives
        must match a per-event replay exactly.
        """
        events = self._stream()
        # A repeated id inside one instant forces a mid-run flush.
        events.insert(40, WorkerUpdate(time=1.0, worker=make_worker(
            2, x=0.9, y=0.9, velocity=0.3, depart_time=1.0)))
        batched = AssignmentEngine(solver=GreedySolver(), rng=5)
        sequential = AssignmentEngine(solver=GreedySolver(), rng=5)
        batched_results = batched.process(EventQueue(events))
        sequential_results = []
        for event in EventQueue(events).drain():
            outcome = sequential.apply(event)
            if outcome is not None:
                sequential_results.append(outcome)
        assert len(batched_results) == len(sequential_results) == 2
        for a, b in zip(batched_results, sequential_results):
            assert sorted(a.assignment.pairs()) == sorted(b.assignment.pairs())
            assert a.objective == b.objective
        assert sorted(
            (p.task_id, p.worker_id, p.arrival) for p in batched.current_pairs()
        ) == sorted(
            (p.task_id, p.worker_id, p.arrival) for p in sequential.current_pairs()
        )
        assert batched.workers[2].location.x == pytest.approx(
            sequential.workers[2].location.x
        )

    def test_batch_methods_validate_like_singles(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_tasks([make_task(0), make_task(1)])
        with pytest.raises(ValueError):
            engine.add_tasks([make_task(2), make_task(0)])
        assert engine.num_tasks == 3  # valid prefix registered, like singles
        with pytest.raises(KeyError):
            engine.update_workers([make_worker(9)])

    def test_duplicate_update_batch_rejected_before_mutation(self):
        """A repeated id in one update batch must raise, engine untouched.

        A cross-cell duplicate would otherwise desynchronise the grid's
        remove + insert bookkeeping (the first occurrence removes, the
        second KeyErrors mid-flight, and the worker's pairs vanish).
        """
        from repro.geometry.points import Point

        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.9, y=0.9, end=5.0))
        engine.add_worker(make_worker(1, x=0.1, y=0.1, velocity=2.0))
        moved = engine.workers[1].moved_to(Point(0.9, 0.9), 0.0)
        with pytest.raises(ValueError):
            engine.update_workers([moved, moved])
        assert engine.workers[1].location.x == pytest.approx(0.1)
        engine.update_worker(moved)  # engine and grid still in lock-step
        assert {p.worker_id for p in engine.current_pairs()} == {1}


class TestHeldWorkers:
    def _engine(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.5, y=0.5, end=10.0))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        engine.add_worker(make_worker(1, x=0.6, y=0.5, velocity=0.5))
        return engine

    def test_held_worker_is_solver_invisible_without_index_churn(self):
        engine = self._engine()
        engine.epoch(0.0)
        hits_before = engine.grid.stats["pair_cache_hits"]
        engine.hold_worker(0)
        result = engine.epoch(0.0)
        assert 0 not in result.dispatch
        assert result.dispatch == {1: 0}
        # No cache entries were invalidated by the hold.
        assert engine.grid.stats["pair_cache_misses"] == 2
        assert engine.grid.stats["pair_cache_hits"] > hits_before
        # Retrieval itself still sees the worker (state is intact).
        assert {p.worker_id for p in engine.current_pairs()} == {0, 1}

    def test_release_restores_visibility(self):
        engine = self._engine()
        engine.hold_worker(0)
        engine.release_worker(0)
        result = engine.epoch(0.0)
        assert set(result.dispatch) == {0, 1}
        assert engine.metrics.events["worker_hold"] == 1
        assert engine.metrics.events["worker_release"] == 1

    def test_hold_unknown_worker_raises(self):
        engine = self._engine()
        with pytest.raises(KeyError):
            engine.hold_worker(99)
        with pytest.raises(KeyError):
            engine.release_worker(99)

    def test_remove_clears_hold(self):
        engine = self._engine()
        engine.hold_worker(0)
        engine.remove_worker(0)
        assert 0 not in engine.held_workers

    def test_reanchor_skips_held_workers(self):
        engine = AssignmentEngine(
            solver=GreedySolver(),
            validity=ValidityRule(allow_waiting=True),
            reanchor_on_epoch=True,
        )
        engine.add_task(make_task(0, x=0.5, y=0.5, start=0.0, end=10.0))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        engine.hold_worker(0)
        future_depart = 7.5  # post-trip availability owned by the holder
        engine.update_worker(
            engine.workers[0].moved_to(engine.workers[0].location, future_depart)
        )
        engine.epoch(2.0)
        assert engine.workers[0].depart_time == future_depart

    def test_hold_does_not_count_as_fallback_churn(self):
        engine = self._engine()
        engine.hold_worker(0)
        assert engine._delta.churn_size() == 3  # the initial adds only
        assert 0 in engine._delta.touched_workers()


class TestEpoch:
    def test_pinned_contributions_become_virtual_workers(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.45, y=0.5))
        engine.add_task(make_task(1, x=0.55, y=0.5))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.2))
        pinned = {0: [WorkerProfile(-99, 1.0, 2.0, 0.7)]}
        result = engine.epoch(0.0, pinned=pinned)
        # Virtual workers are solver bookkeeping: never dispatched, never
        # stored in the live assignment.
        assert all(worker_id >= 0 for worker_id in result.dispatch)
        assert result.num_workers == 2  # one real + one virtual
        assert not engine.assignment.is_assigned(-1)

    def test_pinned_expired_task_dropped(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.5, y=0.5, end=10.0))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        pinned = {42: [WorkerProfile(-1, 0.5, 1.0, 0.9)]}  # unknown task
        result = engine.epoch(0.0, pinned=pinned)
        assert result.num_workers == 1

    def test_forbidden_pairs_never_dispatched(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.5, y=0.5))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        result = engine.epoch(0.0, forbidden={(0, 0)})
        assert result.dispatch == {}

    def test_reanchor_on_epoch(self):
        engine = AssignmentEngine(solver=GreedySolver(), reanchor_on_epoch=True)
        engine.add_worker(make_worker(0, x=0.4, y=0.5, depart_time=0.0))
        engine.add_task(make_task(0, x=0.5, y=0.5, start=0.0, end=10.0))
        engine.epoch(3.0)
        assert engine.workers[0].depart_time == 3.0

    def test_epoch_metrics_history(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.5, y=0.5))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        engine.epoch(0.0)
        engine.epoch(0.0)
        assert engine.metrics.epochs == 2
        assert len(engine.metrics.history) == 2
        # Second epoch with zero churn: everything served from the cache.
        assert engine.metrics.history[1].cache_misses == 0
        assert engine.metrics.history[1].cache_hits > 0
        assert engine.metrics.cache_hit_rate() > 0.0

    def test_snapshot(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, x=0.5, y=0.5))
        engine.add_worker(make_worker(0, x=0.4, y=0.5, velocity=0.5))
        engine.epoch(0.0)
        snap = engine.snapshot()
        assert snap.num_tasks == 1 and snap.num_workers == 1
        assert snap.assignment.task_of(0) == 0
        engine.withdraw_task(0)
        # The snapshot is detached from further churn.
        assert snap.num_tasks == 1

    def test_no_index_backends_agree(self):
        tasks = [make_task(i, x=0.3 + 0.1 * i, y=0.5) for i in range(4)]
        workers = [make_worker(j, x=0.2 + 0.15 * j, y=0.45, velocity=0.4) for j in range(5)]
        pair_sets = []
        for backend in ("python", "numpy"):
            engine = AssignmentEngine(
                solver=GreedySolver(), backend=backend, use_index=False
            )
            for task in tasks:
                engine.add_task(task)
            for worker in workers:
                engine.add_worker(worker)
            pair_sets.append(sorted(
                (p.task_id, p.worker_id, p.arrival) for p in engine.current_pairs()
            ))
        assert pair_sets[0] == pair_sets[1]


class TestExpiryBoundary:
    """A task expiring exactly at ``now`` is *not* yet expired — the
    deadline is inclusive everywhere (validity, session, engine, grid
    pruning, simulator), pinned here."""

    def test_task_predicate(self):
        task = make_task(0, start=0.0, end=5.0)
        assert not task.expired_at(5.0)
        assert task.expired_at(math.nextafter(5.0, math.inf))

    def test_validity_accepts_arrival_at_deadline(self):
        # Worker arrives exactly at the deadline: distance 0.5, speed 0.1.
        task = make_task(0, x=0.5, y=0.5, start=0.0, end=5.0)
        worker = make_worker(0, x=0.0, y=0.5, velocity=0.1)
        assert ValidityRule().effective_arrival(worker, task) == pytest.approx(5.0)

    def test_engine_keeps_task_expiring_at_now(self):
        engine = AssignmentEngine(solver=GreedySolver())
        engine.add_task(make_task(0, start=0.0, end=5.0))
        engine.add_task(make_task(1, start=0.0, end=4.0))
        assert engine.expire_tasks(5.0) == [1]
        assert engine.num_tasks == 1
        # The surviving task is still assignable by a worker arriving at
        # exactly its deadline.
        engine.add_worker(make_worker(0, x=0.0, y=0.5, velocity=0.1))
        result = engine.epoch(5.0)
        assert result.dispatch == {0: 0}

    def test_session_matches_engine(self):
        from repro.dynamic import CrowdsourcingSession

        session = CrowdsourcingSession(solver=GreedySolver())
        session.add_task(make_task(0, start=0.0, end=5.0))
        assert session.expire_tasks(5.0) == []
        assert session.expire_tasks(5.0 + 1e-12) == [0]

    def test_simulator_record_matches(self):
        record = TaskRecord(make_task(0, start=0.0, end=5.0))
        assert record.open_at(5.0)
        assert not record.open_at(math.nextafter(5.0, math.inf))


class TestCloseLifecycle:
    """Engine-owned executor teardown: both engine classes must shut the
    pools they built, tolerate a second ``close()``, and refuse epochs
    afterwards with a clear error instead of submitting to dead pools."""

    def test_plain_engine_close_is_idempotent(self):
        engine = AssignmentEngine(solver=GreedySolver())
        populate_small(engine)
        engine.epoch(0.0)
        engine.close()
        engine.close()  # second close is a no-op, not an error

    def test_plain_engine_closes_owned_solve_executor(self):
        engine = AssignmentEngine(solver=GreedySolver(), solve_executor=2)
        populate_small(engine)
        executor = engine.solve_executor
        engine.close()
        assert executor._closed
        with pytest.raises(RuntimeError, match="already closed"):
            executor.pools()

    def test_plain_engine_epoch_after_close_raises(self):
        engine = AssignmentEngine(solver=GreedySolver())
        populate_small(engine)
        engine.close()
        with pytest.raises(RuntimeError, match="engine is closed"):
            engine.epoch(1.0)

    def test_sharded_engine_close_is_idempotent(self):
        from repro.engine import ShardedAssignmentEngine

        engine = ShardedAssignmentEngine(solver=GreedySolver(), num_shards=2)
        populate_small(engine)
        engine.epoch(0.0)
        engine.close()
        engine.close()

    def test_sharded_engine_closes_owned_solve_executor(self):
        # The regression: ShardedAssignmentEngine.close() used to release
        # only the shard executor, leaking the engine-built solve
        # executor's pinned worker processes.
        from repro.engine import ShardedAssignmentEngine

        engine = ShardedAssignmentEngine(
            solver=GreedySolver(), num_shards=2, solve_executor=2
        )
        populate_small(engine)
        executor = engine.solve_executor
        engine.close()
        assert executor._closed
        with pytest.raises(RuntimeError, match="already closed"):
            executor.pools()

    def test_sharded_engine_epoch_after_close_raises(self):
        from repro.engine import ShardedAssignmentEngine

        engine = ShardedAssignmentEngine(solver=GreedySolver(), num_shards=2)
        populate_small(engine)
        engine.close()
        with pytest.raises(RuntimeError, match="engine is closed"):
            engine.epoch(1.0)

    def test_shared_solve_executor_is_left_running(self):
        from repro.engine.parallel import ParallelSolveExecutor

        shared = ParallelSolveExecutor(processes=2)
        try:
            engine = AssignmentEngine(solver=GreedySolver(), solve_executor=shared)
            populate_small(engine)
            engine.close()
            assert not shared._closed  # caller-owned: caller closes it
        finally:
            shared.close()


class TestEpochReentrancy:
    """The engine is single-threaded: a second ``epoch()`` entered while
    one is mid-solve must raise instead of interleaving grid/RNG state."""

    def test_concurrent_epoch_raises(self):
        class ReentrantSolver(GreedySolver):
            """Calls back into ``epoch()`` from inside the solve."""

            def solve(self, problem, rng=None):
                if getattr(self, "_entered", False):
                    return super().solve(problem, rng=rng)
                self._entered = True
                with pytest.raises(RuntimeError, match="re-entered"):
                    self._engine.epoch(99.0)
                return super().solve(problem, rng=rng)

        solver = ReentrantSolver()
        engine = AssignmentEngine(solver=solver)
        solver._engine = engine
        populate_small(engine)
        result = engine.epoch(1.0)  # outer epoch still completes normally
        assert result.now == 1.0

    def test_guard_resets_after_failed_epoch(self):
        class ExplodingSolver(GreedySolver):
            """First solve raises; later solves succeed."""

            def solve(self, problem, rng=None):
                if not getattr(self, "_failed", False):
                    self._failed = True
                    raise ValueError("boom")
                return super().solve(problem, rng=rng)

        engine = AssignmentEngine(solver=ExplodingSolver())
        populate_small(engine)
        with pytest.raises(ValueError, match="boom"):
            engine.epoch(1.0)
        result = engine.epoch(2.0)  # the guard must not stay latched
        assert result.now == 2.0
