"""Differential churn equivalence: incremental state == from-scratch state.

Randomised add / remove / update / expire sequences drive an
:class:`AssignmentEngine`, and at every checkpoint three representations
are compared bit-for-bit against freshly built ground truth:

* the grid's incrementally cached pair set vs a from-scratch
  ``RdbscGrid.bulk_load`` retrieval vs the no-index brute-force scan
  (pairs *and* arrivals),
* the slot-stable packed slabs vs a one-shot ``from_workers`` /
  ``from_tasks`` pack (every column),
* an engine epoch vs a fresh ``RdbscProblem`` + fresh solver run with the
  same seed (assignment edges and objective values).

Both backends are exercised; the suite carries the ``churn`` marker so it
can be selected (or deselected) on its own: ``pytest -m churn``.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.core.problem import RdbscProblem
from repro.engine import AssignmentEngine
from repro.fastpath.arrays import TaskArrays, WorkerArrays
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index
from tests.conftest import make_pools

pytestmark = pytest.mark.churn

ETA = 0.125

WORKER_COLUMNS = (
    "ids", "xs", "ys", "velocities", "cone_los", "cone_widths",
    "confidences", "depart_times", "log_weights",
)
TASK_COLUMNS = ("ids", "xs", "ys", "starts", "ends", "betas")


def pair_key(pairs):
    """Canonical, rounding-sensitive view of a pair list."""
    return sorted((p.task_id, p.worker_id, p.arrival) for p in pairs)


class ChurnDriver:
    """Applies one random op stream to an engine and a mirror of dicts."""

    def __init__(self, backend, seed, use_index=True):
        task_pool, worker_pool = make_pools(seed)
        self.engine = AssignmentEngine(
            solver=GreedySolver(), backend=backend, eta=ETA,
            rng=seed, use_index=use_index,
        )
        self.rng = np.random.default_rng(seed + 1)
        self.now = 0.0
        self.task_pool = task_pool[20:]
        self.worker_pool = worker_pool[40:]
        self.tasks = {}
        self.workers = {}
        for task in task_pool[:20]:
            self._add_task(task)
        for worker in worker_pool[:40]:
            self._add_worker(worker)

    # -- mirrored ops ---------------------------------------------------- #

    def _add_task(self, task):
        self.tasks[task.task_id] = task
        self.engine.add_task(task)

    def _add_worker(self, worker):
        self.workers[worker.worker_id] = worker
        self.engine.add_worker(worker)

    def step(self):
        roll = int(self.rng.integers(0, 10))
        if roll == 0 and self.task_pool:
            self._add_task(self.task_pool.pop())
        elif roll == 1 and len(self.tasks) > 4:
            task_id = list(self.tasks)[int(self.rng.integers(0, len(self.tasks)))]
            del self.tasks[task_id]
            self.engine.withdraw_task(task_id)
        elif roll in (2, 3) and self.worker_pool:
            self._add_worker(self.worker_pool.pop())
        elif roll in (4, 5) and len(self.workers) > 8:
            worker_id = list(self.workers)[int(self.rng.integers(0, len(self.workers)))]
            del self.workers[worker_id]
            self.engine.remove_worker(worker_id)
        elif roll in (6, 7) and self.workers:
            # In-place update: position jitter (same cell or cross-cell),
            # fresh departure, sometimes a new confidence.
            worker_id = list(self.workers)[int(self.rng.integers(0, len(self.workers)))]
            worker = self.workers[worker_id]
            scale = 0.01 if roll == 6 else 0.2
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + self.rng.normal(0.0, scale), 0.0, 1.0)),
                    float(np.clip(worker.location.y + self.rng.normal(0.0, scale), 0.0, 1.0)),
                ),
                self.now,
            )
            if roll == 7:
                moved = dataclasses.replace(
                    moved, confidence=float(self.rng.uniform(0.5, 0.99))
                )
            self.workers[worker_id] = moved
            self.engine.update_worker(moved)
        elif roll == 8:
            self.now += float(self.rng.uniform(0.0, 0.05))
            expired = {
                t.task_id for t in self.tasks.values() if t.expired_at(self.now)
            }
            assert set(self.engine.expire_tasks(self.now)) == expired
            for task_id in expired:
                del self.tasks[task_id]
        # roll == 9: no-op step (quiet period)

    # -- ground truth ----------------------------------------------------- #

    def task_list(self):
        return list(self.tasks.values())

    def worker_list(self):
        return list(self.workers.values())


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("seed", [3, 17])
def test_incremental_pairs_match_fresh_builds(backend, seed):
    driver = ChurnDriver(backend, seed)
    driver.engine.epoch(driver.now)  # populate every cache entry
    for checkpoint in range(6):
        for _ in range(15):
            driver.step()
        incremental = pair_key(driver.engine.current_pairs())
        fresh_grid = RdbscGrid.bulk_load(
            driver.task_list(), driver.worker_list(), ETA, backend=backend
        )
        assert incremental == pair_key(fresh_grid.valid_pairs()), checkpoint
        assert incremental == pair_key(
            retrieve_pairs_without_index(driver.task_list(), driver.worker_list())
        ), checkpoint


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_slot_arrays_match_fresh_pack(backend):
    driver = ChurnDriver(backend, seed=11)
    for _ in range(80):
        driver.step()
    engine = driver.engine
    workers, warrays = engine.worker_slots.compact()
    assert {w.worker_id for w in workers} == set(driver.workers)
    fresh = WorkerArrays.from_workers(workers)
    for column in WORKER_COLUMNS:
        assert np.array_equal(
            getattr(warrays, column), getattr(fresh, column), equal_nan=True
        ), column
    tasks, tarrays = engine.task_slots.compact()
    assert {t.task_id for t in tasks} == set(driver.tasks)
    fresh_tasks = TaskArrays.from_tasks(tasks)
    for column in TASK_COLUMNS:
        assert np.array_equal(getattr(tarrays, column), getattr(fresh_tasks, column)), column


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize(
    "make_solver",
    [lambda: GreedySolver(), lambda: SamplingSolver(num_samples=12)],
    ids=["greedy", "sampling"],
)
def test_epoch_matches_fresh_problem_solve(backend, make_solver):
    seed = 29
    driver = ChurnDriver(backend, seed)
    driver.engine.solver = make_solver()
    for checkpoint in range(3):
        for _ in range(20):
            driver.step()
        # Expire on both sides first so the epoch itself is pure solve.
        expired = driver.engine.expire_tasks(driver.now)
        for task_id in expired:
            driver.tasks.pop(task_id, None)
        outcome = driver.engine.epoch(driver.now)
        fresh_problem = RdbscProblem(
            driver.task_list(),
            driver.worker_list(),
            driver.engine.validity,
            backend=backend,
        )
        fresh_result = make_solver().solve(fresh_problem, rng=seed)
        assert outcome.num_pairs == fresh_problem.num_pairs, checkpoint
        assert sorted(outcome.assignment.pairs()) == sorted(
            fresh_result.assignment.pairs()
        ), checkpoint
        assert outcome.objective == fresh_result.objective, checkpoint


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_no_index_retrieval_matches_after_churn(backend):
    driver = ChurnDriver(backend, seed=41, use_index=False)
    for _ in range(60):
        driver.step()
    assert pair_key(driver.engine.current_pairs()) == pair_key(
        retrieve_pairs_without_index(driver.task_list(), driver.worker_list())
    )


def test_slot_reuse_and_generations():
    from repro.fastpath.arrays import WorkerSlots
    from tests.conftest import make_worker

    slots = WorkerSlots(capacity=2)
    a = slots.add(make_worker(0))
    b = slots.add(make_worker(1))
    assert slots.capacity == 2
    slots.add(make_worker(2))  # forces a grow
    assert slots.capacity == 4
    generation = slots.generations[a]
    slots.remove(0)
    assert slots.generations[a] == generation + 1
    # The freed slot is reused by the next arrival (LIFO free list).
    assert slots.add(make_worker(3)) == a
    assert slots.generations[a] == generation + 2
    assert sorted(slots.slot_of) == [1, 2, 3]
    with pytest.raises(ValueError):
        slots.add(make_worker(3))
    with pytest.raises(KeyError):
        slots.remove(99)
    assert b == slots.slot_of[1]


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_tcell_compaction_drops_dead_probes(backend):
    """Superset lists shed members that can only yield dead probes.

    One fast worker in a centre cell reaches tasks in many outlying cells;
    each outlying cell also hosts a slow resident worker, so removing the
    tasks leaves those cells alive — exactly the week-long-session leak
    the ROADMAP describes: the centre cell's tcell_list keeps probing
    task-less cells forever.  Compaction must rebuild the list tight while
    retrieval stays equivalent to a fresh build.
    """
    from tests.conftest import make_task, make_worker

    eta = 0.1
    grid = RdbscGrid(eta, backend=backend, compact_stale_ratio=0.5)
    frozen = RdbscGrid(eta, backend=backend, compact_stale_ratio=None)
    tasks, workers = [], [make_worker(0, x=0.5, y=0.5, velocity=5.0)]
    spots = [(0.05, 0.05), (0.05, 0.55), (0.05, 0.95), (0.55, 0.05),
             (0.95, 0.05), (0.95, 0.55), (0.95, 0.95), (0.55, 0.95)]
    for k, (x, y) in enumerate(spots):
        tasks.append(make_task(k, x=x, y=y, end=20.0))
        workers.append(make_worker(100 + k, x=x, y=y, velocity=0.001))
    for g in (grid, frozen):
        for t in tasks:
            g.insert_task(t)
        for w in workers:
            g.insert_worker(w)
    assert pair_key(grid.valid_pairs()) == pair_key(frozen.valid_pairs())
    # Retire every outlying task; the cells stay (slow residents).
    for t in tasks:
        grid.remove_task(t.task_id)
        frozen.remove_task(t.task_id)
    centre = grid.cell_at(workers[0].location)
    stale_size = len(frozen.tcell_list(frozen.cell_at(workers[0].location)))
    assert grid.valid_pairs() == [] == frozen.valid_pairs()
    assert grid.stats["tcell_compactions"] > 0
    assert grid.stats["tcell_members_dropped"] > 0
    assert len(grid.tcell_list(centre)) < stale_size
    # Fresh task churn after compaction still retrieves exactly.
    late = make_task(50, x=0.05, y=0.55, end=30.0)
    for g in (grid, frozen):
        g.insert_task(late)
    expected = pair_key(
        retrieve_pairs_without_index([late], workers)
    )
    assert pair_key(grid.valid_pairs()) == expected
    assert pair_key(frozen.valid_pairs()) == expected
    # Compaction converges: once a list is rebuilt tight, further
    # retrievals without churn must not keep rebuilding it.
    settled = grid.stats["tcell_compactions"]
    grid.valid_pairs()
    grid.valid_pairs()
    assert grid.stats["tcell_compactions"] == settled


def test_tcell_compaction_no_thrash_without_exact_confirm():
    """Superset-only lists (exact_confirm=False) never thrash on empty probes.

    A tight rebuild without exact confirmation re-admits members whose
    probes are empty but whose cells still hold tasks, so such members
    must not count toward the stale ratio — otherwise every retrieval
    would pay a full rebuild that drops nothing.
    """
    from tests.conftest import make_task, make_worker

    grid = RdbscGrid(0.1, exact_confirm=False, compact_stale_ratio=0.5)
    grid.insert_worker(make_worker(0, x=0.5, y=0.5, velocity=5.0))
    spots = [(0.05, 0.05), (0.05, 0.55), (0.05, 0.95), (0.55, 0.05),
             (0.95, 0.05), (0.95, 0.55)]
    for k, (x, y) in enumerate(spots):
        # Windows already closed for any arrival: probes all come back
        # empty, but the cells keep their tasks.
        grid.insert_task(make_task(k, x=x, y=y, start=0.0, end=0.01))
    for _ in range(5):
        assert grid.valid_pairs() == []
    assert grid.stats["tcell_compactions"] == 0


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_compaction_preserves_churn_equivalence(backend):
    """A long random churn session with compaction still matches fresh builds."""
    driver = ChurnDriver(backend, seed=23)
    driver.engine.grid.compact_stale_ratio = 0.3
    driver.engine.epoch(driver.now)
    for checkpoint in range(4):
        for _ in range(40):
            driver.step()
        incremental = pair_key(driver.engine.current_pairs())
        assert incremental == pair_key(
            RdbscGrid.bulk_load(
                driver.task_list(), driver.worker_list(), ETA, backend=backend
            ).valid_pairs()
        ), checkpoint
