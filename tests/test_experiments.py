"""Tests for the experiment harness (spec / runner / reporting / figures)."""

import pytest

from repro.algorithms import GreedySolver, RandomSolver
from repro.datagen import ExperimentConfig, generate_problem
from repro.experiments import (
    Experiment,
    ParameterPoint,
    format_series,
    format_table,
    run_experiment,
)
from repro.experiments.figures import (
    fig11_expiration_real,
    fig13_tasks_uniform,
    fig14_workers_uniform,
    fig15_angles_uniform,
    fig22_beta_real,
    fig23_tasks_skewed,
    fig24_workers_skewed,
    fig25_velocity_uniform,
    fig26_velocity_skewed,
    fig27_angles_skewed,
    run_coverage_showcase,
    run_index_experiment,
)
from repro.experiments.reporting import format_figure


def tiny_experiment():
    def factory(m):
        def make(seed):
            return generate_problem(
                ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=2 * m), seed
            )

        return make

    return Experiment(
        name="tiny",
        figure="Test Figure",
        parameter_name="m",
        points=[ParameterPoint(str(m), factory(m)) for m in (4, 8)],
        make_solvers=lambda: [GreedySolver(), RandomSolver()],
    )


class TestSpec:
    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            Experiment("x", "F", "p", points=[])

    def test_figure_builders_have_points(self):
        for builder in (
            fig11_expiration_real,
            fig13_tasks_uniform,
            fig14_workers_uniform,
            fig15_angles_uniform,
            fig22_beta_real,
            fig23_tasks_skewed,
            fig24_workers_skewed,
            fig25_velocity_uniform,
            fig26_velocity_skewed,
            fig27_angles_skewed,
        ):
            experiment = builder()
            assert len(experiment.points) >= 4
            assert experiment.figure.startswith("Figure")


class TestRunner:
    def test_rows_cover_grid(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        assert len(result.rows) == 2 * 2  # points x solvers
        assert result.solvers() == ["GREEDY", "RANDOM"]

    def test_seed_averaging(self):
        result = run_experiment(tiny_experiment(), seeds=(1, 2, 3))
        assert all(row.runs == 3 for row in result.rows)

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(tiny_experiment(), seeds=())

    def test_row_lookup(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        row = result.row("4", "GREEDY")
        assert row.parameter == "4"
        with pytest.raises(KeyError):
            result.row("4", "NOPE")

    def test_series(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        series = result.series("GREEDY", "total_std")
        assert [label for label, _ in series] == ["4", "8"]

    def test_timings_positive(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        assert all(row.seconds > 0.0 for row in result.rows)


class TestReporting:
    def test_format_table_contains_rows(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        table = format_table(result)
        assert "GREEDY" in table and "RANDOM" in table
        assert "Test Figure" in table

    def test_format_series_metrics(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        for metric in ("min_reliability", "total_std", "seconds"):
            text = format_series(result, metric)
            assert "GREEDY" in text

    def test_format_series_unknown_metric(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        with pytest.raises(ValueError):
            format_series(result, "nope")

    def test_format_figure_has_both_panels(self):
        result = run_experiment(tiny_experiment(), seeds=(1,))
        text = format_figure(result)
        assert "Minimum Reliability" in text
        assert "total_STD" in text


class TestHarnessFunctions:
    def test_index_experiment_smoke(self):
        rows = run_index_experiment(n_values=(40, 80), num_tasks=60, seed=1)
        assert len(rows) == 2
        assert rows[0].pairs >= 0
        assert rows[1].construction_seconds > 0.0

    def test_coverage_showcase_smoke(self):
        reports = run_coverage_showcase(
            make_solvers=lambda: [GreedySolver()], n_workers=24, seed=2
        )
        assert "GREEDY" in reports
        report = reports["GREEDY"]
        assert 0.0 <= report.experimental <= report.ground_truth <= 1.0
