"""The batched exact ΔE[STD] kernels: bitwise differential + property suite.

Three layers of evidence pin :mod:`repro.fastpath.diversity` to the scalar
Lemma 3.1 reductions:

* **Brute force** — on ≤4-worker random instances, ``expected_std`` agrees
  with the possible-world oracle ``exact_expected_std`` to float precision
  and the batched kernel equals *both* (bitwise against the reduction).
* **Row-wise bitwise** — seeded adversarial slabs (duplicate angles,
  boundary arrivals, certain/hopeless workers, ragged row counts, β at the
  endpoints) where every batched SD / TD / E[STD] value must carry the
  exact bits of the per-row scalar call, signed zeros included.
* **Block ΔE[STD]** — :func:`repro.fastpath.batch_delta_estd` against
  :meth:`~repro.core.objectives.IncrementalEvaluator.delta_estd` pair by
  pair on partially filled evaluators, and greedy plans across backends,
  pruning flags and the shard-batched scorer (the heavier sweeps carry the
  ``churn`` marker, like the other differential suites).

The epoch phase profiler (:mod:`repro.engine.profile`) is unit-tested here
too — it ships in the same PR and the greedy fast path reports into it.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GreedySolver
from repro.core.diversity import WorkerProfile
from repro.core.expected import (
    expected_spatial_diversity,
    expected_std,
    expected_temporal_diversity,
)
from repro.core.objectives import IncrementalEvaluator
from repro.core.possible_worlds import exact_expected_std
from repro.datagen import ExperimentConfig, generate_problem
from repro.engine import ParallelSolveExecutor
from repro.engine.profile import PHASES, PhaseProfiler, activated, phase
from repro.fastpath import (
    DiversitySlab,
    batch_delta_estd,
    batch_expected_spatial_diversity,
    batch_expected_std,
    batch_expected_temporal_diversity,
    pack_delta_slab,
)
from repro.fastpath.diversity import _entropy_terms
from repro.geometry.angles import TWO_PI
from tests.conftest import make_task

probs = st.floats(min_value=0.0, max_value=1.0)
angles = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9)
times = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def diversity_instances(draw, max_workers=4):
    r = draw(st.integers(min_value=0, max_value=max_workers))
    return (
        [draw(angles) for _ in range(r)],
        [draw(times) for _ in range(r)],
        [draw(probs) for _ in range(r)],
    )


def same_bits(a: float, b: float) -> bool:
    """Exact equality including the sign of zero."""
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


def slab_from_rows(rows, max_r=None):
    """Pad a list of (beta, start, end, angles, arrivals, ps) into a slab."""
    num_rows = len(rows)
    if max_r is None:
        max_r = max([1] + [len(row[3]) for row in rows])
    out = DiversitySlab(
        betas=np.zeros(num_rows),
        starts=np.zeros(num_rows),
        ends=np.zeros(num_rows),
        counts=np.zeros(num_rows, dtype=np.int64),
        angles=np.zeros((num_rows, max_r)),
        arrivals=np.zeros((num_rows, max_r)),
        confidences=np.zeros((num_rows, max_r)),
    )
    for b, (beta, start, end, angle_list, arrivals, ps) in enumerate(rows):
        r = len(angle_list)
        out.betas[b] = beta
        out.starts[b] = start
        out.ends[b] = end
        out.counts[b] = r
        out.angles[b, :r] = angle_list
        out.arrivals[b, :r] = arrivals
        out.confidences[b, :r] = ps
    return out


def random_rows(seed, num_rows, max_r=9):
    """Adversarial random rows: duplicates, boundaries, certainty spikes."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(num_rows):
        r = int(rng.integers(0, max_r + 1))
        angle_list = rng.uniform(0.0, TWO_PI, size=r)
        arrivals = rng.uniform(0.0, 10.0, size=r)
        ps = rng.uniform(0.0, 1.0, size=r)
        if r >= 2 and rng.random() < 0.4:
            angle_list[1] = angle_list[0]  # duplicate angle, sort ties
        if r >= 1 and rng.random() < 0.4:
            arrivals[0] = [0.0, 10.0][int(rng.integers(0, 2))]  # window edge
        if r >= 1 and rng.random() < 0.3:
            ps[0] = [0.0, 1.0][int(rng.integers(0, 2))]  # certain / hopeless
        beta = float(rng.choice([0.0, 1.0, rng.uniform(0.0, 1.0)]))
        start = float(rng.uniform(0.0, 2.0))
        end = start + float(rng.choice([0.0, rng.uniform(0.1, 9.0)]))
        rows.append((beta, start, end, list(angle_list), list(arrivals), list(ps)))
    return rows


# --------------------------------------------------------------------- #
# Row-wise bitwise equality with the scalar reductions
# --------------------------------------------------------------------- #


class TestRowwiseBitwise:
    @pytest.mark.parametrize("seed", range(4))
    def test_spatial_rows_bitwise(self, seed):
        rows = random_rows(seed, 80)
        slab = slab_from_rows(rows)
        batched = batch_expected_spatial_diversity(
            slab.angles, slab.confidences, slab.counts
        )
        for b, (_, _, _, angle_list, _, ps) in enumerate(rows):
            assert same_bits(batched[b], expected_spatial_diversity(angle_list, ps))

    @pytest.mark.parametrize("seed", range(4))
    def test_temporal_rows_bitwise(self, seed):
        rows = random_rows(seed, 80)
        slab = slab_from_rows(rows)
        batched = batch_expected_temporal_diversity(
            slab.arrivals, slab.confidences, slab.starts, slab.ends, slab.counts
        )
        for b, (_, start, end, _, arrivals, ps) in enumerate(rows):
            scalar = expected_temporal_diversity(arrivals, ps, start, end)
            assert same_bits(batched[b], scalar)

    @pytest.mark.parametrize("seed", range(4))
    def test_std_rows_bitwise(self, seed):
        rows = random_rows(seed, 80)
        slab = slab_from_rows(rows)
        batched = batch_expected_std(slab)
        for b, (beta, start, end, angle_list, arrivals, ps) in enumerate(rows):
            task = make_task(start=start, end=end, beta=beta)
            profiles = [
                WorkerProfile(i, angle_list[i], arrivals[i], ps[i])
                for i in range(len(ps))
            ]
            assert same_bits(batched[b], expected_std(task, profiles))

    def test_empty_slab(self):
        slab = slab_from_rows([])
        assert batch_expected_std(slab).shape == (0,)

    def test_arrival_outside_window_clamps(self):
        # The scalar clamps arrivals into [start, end]; so must the slab.
        rows = [(0.25, 2.0, 5.0, [0.0, 3.0], [0.5, 9.5], [0.7, 0.6])]
        slab = slab_from_rows(rows)
        task = make_task(start=2.0, end=5.0, beta=0.25)
        profiles = [WorkerProfile(0, 0.0, 0.5, 0.7), WorkerProfile(1, 3.0, 9.5, 0.6)]
        assert same_bits(batch_expected_std(slab)[0], expected_std(task, profiles))


# --------------------------------------------------------------------- #
# Property: reduction == possible-world brute force == batched kernel
# --------------------------------------------------------------------- #


class TestBruteForceOracle:
    @settings(max_examples=80, deadline=None)
    @given(diversity_instances(max_workers=4), st.floats(min_value=0.0, max_value=1.0))
    def test_small_instances_match_enumeration(self, instance, beta):
        angle_list, arrivals, ps = instance
        task = make_task(start=0.0, end=10.0, beta=beta)
        profiles = [
            WorkerProfile(i, angle_list[i], arrivals[i], ps[i])
            for i in range(len(ps))
        ]
        scalar = expected_std(task, profiles)
        brute = exact_expected_std(task, profiles)
        slab = slab_from_rows([(beta, 0.0, 10.0, angle_list, arrivals, ps)])
        batched = float(batch_expected_std(slab)[0])
        # Matrix reduction vs enumeration: float-precision agreement.
        assert scalar == pytest.approx(brute, abs=1e-10)
        # Batched kernel vs the reduction: exact bits, so it inherits the
        # oracle agreement transitively.
        assert same_bits(batched, scalar)


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #


class TestValidation:
    def test_invalid_beta_raises(self):
        rows = [(0.5, 0.0, 10.0, [1.0], [1.0], [0.5])]
        slab = slab_from_rows(rows)
        slab.betas[0] = 1.5
        with pytest.raises(ValueError, match="beta must be within"):
            batch_expected_std(slab)
        slab.betas[0] = -0.1
        with pytest.raises(ValueError, match="beta must be within"):
            batch_expected_std(slab)

    def test_out_of_range_fraction_raises(self):
        with pytest.raises(ValueError, match="fraction must be within"):
            _entropy_terms(np.array([0.25, 1.1]))
        with pytest.raises(ValueError, match="fraction must be within"):
            _entropy_terms(np.array([-1e-3]))

    def test_entropy_terms_branches(self):
        values = np.array([0.0, 1e-16, 0.5, 1.0, 1.0 + 1e-10])
        terms = _entropy_terms(values)
        assert terms[0] == 0.0 and terms[1] == 0.0  # below _ZERO
        assert same_bits(terms[2], -0.5 * math.log(0.5))
        assert terms[3] == 0.0 and terms[4] == 0.0  # at/above one


# --------------------------------------------------------------------- #
# Block ΔE[STD] vs the incremental evaluator
# --------------------------------------------------------------------- #


class TestBatchDeltaEstd:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_evaluator_pair_by_pair(self, seed):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=8, num_workers=20), seed
        )
        evaluator = IncrementalEvaluator(problem)
        # Partially fill so rows cover empty tasks, deep tasks, repeats.
        rng = np.random.default_rng(seed)
        for worker in problem.workers[::3]:
            tasks = problem.candidate_tasks(worker.worker_id)
            if tasks:
                evaluator.apply(
                    tasks[int(rng.integers(0, len(tasks)))], worker.worker_id
                )
        pairs = [
            (task_id, worker.worker_id)
            for worker in problem.workers
            for task_id in problem.candidate_tasks(worker.worker_id)
        ]
        if not pairs:
            pytest.skip("degenerate instance with no valid pairs")
        batched = batch_delta_estd(problem, evaluator, pairs)
        for k, (task_id, worker_id) in enumerate(pairs):
            assert same_bits(batched[k], evaluator.delta_estd(task_id, worker_id))

    def test_pack_appends_candidate_profile_last(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=4, num_workers=10), 0
        )
        pairs = [
            (task_id, worker.worker_id)
            for worker in problem.workers
            for task_id in problem.candidate_tasks(worker.worker_id)
        ]
        if not pairs:
            pytest.skip("degenerate instance with no valid pairs")
        evaluator = IncrementalEvaluator(problem)
        slab, old_estd = pack_delta_slab(problem, evaluator, pairs)
        assert len(slab) == len(pairs)
        assert np.all(old_estd == 0.0)  # empty evaluator
        for k, (task_id, worker_id) in enumerate(pairs):
            profile = problem.pair_profile(task_id, worker_id)
            r = int(slab.counts[k]) - 1
            assert slab.angles[k, r] == profile.angle
            assert slab.arrivals[k, r] == profile.arrival
            assert slab.confidences[k, r] == profile.confidence

    def test_slab_take_preserves_rows(self):
        rows = random_rows(7, 20)
        slab = slab_from_rows(rows)
        sub = slab.take(np.array([3, 11, 3]))
        full = batch_expected_std(slab)
        assert np.array_equal(batch_expected_std(sub), full[[3, 11, 3]])


# --------------------------------------------------------------------- #
# Greedy plans: backends, pruning, shard-batched scorer
# --------------------------------------------------------------------- #


def plan_key(result):
    return (sorted(result.assignment.pairs()), result.objective)


@pytest.mark.churn
class TestGreedyBlockScoring:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("use_pruning", [False, True])
    def test_backends_identical_plans(self, seed, use_pruning):
        config = ExperimentConfig.scaled_defaults(num_tasks=12, num_workers=36)
        py = GreedySolver(use_pruning=use_pruning, backend="python").solve(
            generate_problem(config, seed)
        )
        np_ = GreedySolver(use_pruning=use_pruning, backend="numpy").solve(
            generate_problem(config, seed, backend="numpy")
        )
        assert plan_key(py) == plan_key(np_)
        assert py.stats == np_.stats

    @pytest.mark.parametrize("use_pruning", [False, True])
    def test_shard_batched_scorer_identical(self, use_pruning):
        config = ExperimentConfig.scaled_defaults(num_tasks=12, num_workers=36)
        problem = generate_problem(config, 5, backend="numpy")
        reference = GreedySolver(use_pruning=use_pruning, backend="numpy").solve(
            problem
        )
        from repro.engine import ShardMap

        with ParallelSolveExecutor(
            processes=2, min_pairs_per_process=1, min_dstd_per_process=1
        ) as executor:
            solver = GreedySolver(use_pruning=use_pruning, backend="numpy")
            executor.bind(solver, shard_map=ShardMap(2, 0.125))
            assert plan_key(solver.solve(problem)) == plan_key(reference)
            assert solver.scorer.stats["dstd_batches_remote"] > 0


# --------------------------------------------------------------------- #
# Phase profiler
# --------------------------------------------------------------------- #


class TestPhaseProfiler:
    def test_phase_accumulates_and_take_resets(self):
        profiler = PhaseProfiler()
        with profiler.phase("prune"):
            pass
        profiler.add("merge", 0.25)
        profiler.add("merge", 0.5)
        pending = profiler.pending()
        assert pending["merge"] == 0.75
        assert pending["prune"] >= 0.0
        snapshot = profiler.take()
        assert snapshot == pending
        assert profiler.take() == {}

    def test_module_phase_is_noop_when_inactive(self):
        with phase("delta_estd"):
            pass  # must not raise, and records nowhere

    def test_activated_routes_module_phases(self):
        profiler = PhaseProfiler()
        with activated(profiler):
            with phase("delta_estd"):
                pass
        assert "delta_estd" in profiler.pending()
        with phase("delta_estd"):
            pass  # deactivated again: no further accumulation
        assert profiler.pending() == profiler.take()

    def test_activated_stack_innermost_wins(self):
        outer, inner = PhaseProfiler(), PhaseProfiler()
        with activated(outer):
            with activated(inner):
                with phase("merge"):
                    pass
            with phase("route"):
                pass
        assert "merge" in inner.pending() and "merge" not in outer.pending()
        assert "route" in outer.pending() and "route" not in inner.pending()

    def test_phase_names_are_the_engine_vocabulary(self):
        assert PHASES == (
            "route",
            "coalesce",
            "index",
            "prune",
            "delta_min_r",
            "delta_estd",
            "merge",
            "wal_append",
            "diff_ship",
            "rebalance",
        )
