"""Differential tests: the numpy fast path against the scalar reference.

Every batch kernel in :mod:`repro.fastpath` has a scalar twin that is the
semantic source of truth.  These tests sweep seeded random instances and
hand-built edge cases — zero velocity, expired deadlines, cones wrapping
across 0/2π, workers standing exactly on tasks, arrivals exactly on period
boundaries — and require the two backends to agree *exactly*: identical
valid-pair sets (arrivals included), identical solver assignments,
identical objectives, identical pruning decisions.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GreedySolver, SamplingSolver
from repro.algorithms.pruning import CandidateBounds, prune_candidates
from repro.algorithms.random_assign import (
    CandidateTable,
    draw_random_assignment,
    draw_random_assignment_batch,
)
from repro.core.objectives import IncrementalEvaluator
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.datagen import ExperimentConfig, generate_problem
from repro.fastpath import (
    TaskArrays,
    WorkerArrays,
    batch_delta_min_r,
    batch_effective_arrival,
    batch_valid_pairs,
    lemma43_prune_order,
)
from repro.geometry.angles import TWO_PI, AngleInterval
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index


def pair_set(pairs):
    return {(p.task_id, p.worker_id, p.arrival) for p in pairs}


def sparse_config(**overrides):
    """Paper-style Table 2 settings: narrow cones, local reach."""
    base = dict(
        num_tasks=24,
        num_workers=48,
        start_time_range=(0.0, 1.0),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.0, 0.15),
        angle_range_max=math.pi / 6.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# --------------------------------------------------------------------- #
# Valid-pair retrieval
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("waiting", [False, True])
@pytest.mark.parametrize("dense", [False, True])
def test_random_instances_identical_pairs(seed, waiting, dense):
    config = (
        ExperimentConfig.scaled_defaults(num_tasks=24, num_workers=48)
        if dense
        else sparse_config()
    )
    problem = generate_problem(config, seed)
    rule = ValidityRule(allow_waiting=waiting)
    scalar = retrieve_pairs_without_index(problem.tasks, problem.workers, rule)
    fast = batch_valid_pairs(problem.tasks, problem.workers, rule)
    assert pair_set(scalar) == pair_set(fast)


@pytest.mark.parametrize("backend", ["numpy"])
@pytest.mark.parametrize("seed", range(4))
def test_problem_backend_identical_graph(seed, backend):
    config = sparse_config()
    reference = generate_problem(config, seed)
    other = generate_problem(config, seed, backend=backend)
    assert pair_set(reference.valid_pairs()) == pair_set(other.valid_pairs())
    for worker in reference.workers:
        assert reference.candidate_tasks(worker.worker_id) == other.candidate_tasks(
            worker.worker_id
        )


def edge_case_instances():
    """Hand-built boundary instances; all coordinates exactly representable."""
    full = AngleInterval.full_circle()

    # 3-4-5 triangle: distance 5 exactly, so arrival boundaries are exact.
    origin = Point(0.0, 0.0)
    target = Point(3.0, 4.0)

    cases = {}
    cases["zero_velocity_off_task"] = (
        [SpatialTask(0, target, 0.0, 10.0)],
        [MovingWorker(0, origin, 0.0, full, 0.9)],
    )
    cases["zero_velocity_on_task"] = (
        [SpatialTask(0, origin, 0.0, 10.0)],
        [MovingWorker(0, origin, 0.0, full, 0.9)],
    )
    cases["already_expired"] = (
        [SpatialTask(0, target, 0.0, 1.0)],
        [MovingWorker(0, origin, 1.0, full, 0.9, depart_time=2.0)],
    )
    cases["arrival_exactly_at_deadline"] = (
        [SpatialTask(0, target, 0.0, 5.0)],
        [MovingWorker(0, origin, 1.0, full, 0.9)],
    )
    cases["arrival_exactly_at_start"] = (
        [SpatialTask(0, target, 5.0, 6.0)],
        [MovingWorker(0, origin, 1.0, full, 0.9)],
    )
    cases["early_arrival_needs_waiting"] = (
        [SpatialTask(0, target, 8.0, 9.0)],
        [MovingWorker(0, origin, 1.0, full, 0.9)],
    )
    # Cone wrapping across the positive x-axis: [7π/4, 9π/4] contains
    # bearing 0 and 2π-ε but not π/2.
    wrap = AngleInterval.from_bounds(7.0 * math.pi / 4.0, 9.0 * math.pi / 4.0)
    cases["cone_wraps_zero"] = (
        [
            SpatialTask(0, Point(1.0, 0.0), 0.0, 10.0),
            SpatialTask(1, Point(0.0, 1.0), 0.0, 10.0),
            SpatialTask(2, Point(1.0, -1.0), 0.0, 10.0),
        ],
        [MovingWorker(0, origin, 1.0, wrap, 0.9)],
    )
    cases["bearing_exactly_on_cone_edge"] = (
        [SpatialTask(0, Point(1.0, 1.0), 0.0, 10.0)],
        [MovingWorker(0, origin, 1.0, AngleInterval(math.pi / 4.0, 0.0), 0.9)],
    )
    cases["worker_exactly_on_task"] = (
        [SpatialTask(0, origin, 0.0, 10.0)],
        # Zero-width cone pointing away; coincidence must still pass.
        [MovingWorker(0, origin, 1.0, AngleInterval(math.pi, 0.0), 0.9)],
    )
    cases["mixed_population"] = (
        [
            SpatialTask(0, target, 0.0, 5.0),
            SpatialTask(1, origin, 2.0, 3.0),
            SpatialTask(2, Point(0.5, 0.5), 0.0, 0.0),
        ],
        [
            MovingWorker(0, origin, 1.0, full, 0.9),
            MovingWorker(1, origin, 0.0, full, 0.5),
            MovingWorker(2, target, 2.0, wrap, 1.0, depart_time=1.0),
        ],
    )
    return cases


@pytest.mark.parametrize("name", sorted(edge_case_instances()))
@pytest.mark.parametrize("waiting", [False, True])
def test_edge_cases_identical_pairs(name, waiting):
    tasks, workers = edge_case_instances()[name]
    rule = ValidityRule(allow_waiting=waiting)
    scalar = retrieve_pairs_without_index(tasks, workers, rule)
    fast = batch_valid_pairs(tasks, workers, rule)
    assert pair_set(scalar) == pair_set(fast)


def test_edge_case_expectations():
    """Spot-check the constructed boundaries actually exercise both sides."""
    cases = edge_case_instances()
    rule = ValidityRule()

    def pairs_of(name, rule=rule):
        tasks, workers = cases[name]
        return {(p.task_id, p.worker_id) for p in batch_valid_pairs(tasks, workers, rule)}

    assert pairs_of("zero_velocity_off_task") == set()
    assert pairs_of("zero_velocity_on_task") == {(0, 0)}
    assert pairs_of("already_expired") == set()
    assert pairs_of("arrival_exactly_at_deadline") == {(0, 0)}
    assert pairs_of("arrival_exactly_at_start") == {(0, 0)}
    assert pairs_of("early_arrival_needs_waiting") == set()
    assert pairs_of(
        "early_arrival_needs_waiting", ValidityRule(allow_waiting=True)
    ) == {(0, 0)}
    assert pairs_of("cone_wraps_zero") == {(0, 0), (2, 0)}
    assert pairs_of("bearing_exactly_on_cone_edge") == {(0, 0)}
    assert pairs_of("worker_exactly_on_task") == {(0, 0)}


def test_ulp_adverse_deadline_not_dropped():
    """A deadline pinned to ``math.hypot`` must survive the batch filter.

    ``sqrt(dx*dx + dy*dy)`` can land one ulp above ``math.hypot(dx, dy)``;
    with the task's period ending exactly at the scalar arrival, a strict
    vectorised filter would silently drop the pair the scalar rule
    accepts.  The slack-widened candidate filter must keep it.
    """
    dx, dy = 0.2604923103919594, 0.8050278270130223
    deadline = math.hypot(dx, dy)
    tasks = [SpatialTask(0, Point(dx, dy), 0.0, deadline)]
    workers = [MovingWorker(0, Point(0.0, 0.0), 1.0, AngleInterval.full_circle(), 0.9)]
    scalar = retrieve_pairs_without_index(tasks, workers)
    fast = batch_valid_pairs(tasks, workers)
    assert pair_set(scalar) == pair_set(fast)
    assert len(fast) == 1

    grid = RdbscGrid.bulk_load(tasks, workers, 0.5, backend="numpy")
    assert pair_set(grid.valid_pairs()) == pair_set(scalar)


def test_build_pairs_is_idempotent():
    problem = generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=6, num_workers=12), 4
    )
    before = {
        w.worker_id: problem.candidate_tasks(w.worker_id) for w in problem.workers
    }
    pairs_before = pair_set(problem.valid_pairs())
    for backend in ("numpy", "python"):
        problem.build_pairs(backend)
        assert pair_set(problem.valid_pairs()) == pairs_before
        for worker in problem.workers:
            assert problem.candidate_tasks(worker.worker_id) == before[worker.worker_id]


def test_batch_matrix_shape_and_nan_mask():
    tasks, workers = edge_case_instances()["mixed_population"]
    matrix = batch_effective_arrival(
        TaskArrays.from_tasks(tasks), WorkerArrays.from_workers(workers)
    )
    assert matrix.shape == (3, 3)
    rule = ValidityRule()
    for i, task in enumerate(tasks):
        for j, worker in enumerate(workers):
            scalar = rule.effective_arrival(worker, task)
            if scalar is None:
                assert math.isnan(matrix[i, j])
            else:
                assert matrix[i, j] == pytest.approx(scalar, rel=1e-12, abs=1e-12)


# --------------------------------------------------------------------- #
# Grid index backend
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("exact_confirm", [True, False])
def test_grid_backend_identical_retrieval(seed, exact_confirm):
    problem = generate_problem(sparse_config(num_tasks=40, num_workers=80), seed)
    reference = RdbscGrid.bulk_load(
        problem.tasks, problem.workers, 0.125, problem.validity, exact_confirm
    )
    batched = RdbscGrid.bulk_load(
        problem.tasks,
        problem.workers,
        0.125,
        problem.validity,
        exact_confirm,
        backend="numpy",
    )
    assert pair_set(reference.valid_pairs()) == pair_set(batched.valid_pairs())


# --------------------------------------------------------------------- #
# Solver backends
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("use_pruning", [True, False])
def test_greedy_backend_identical(seed, use_pruning):
    problem = generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=12, num_workers=30), seed
    )
    reference = GreedySolver(use_pruning=use_pruning).solve(problem)
    batched = GreedySolver(use_pruning=use_pruning, backend="numpy").solve(problem)
    assert sorted(reference.assignment.pairs()) == sorted(batched.assignment.pairs())
    assert reference.objective == batched.objective
    assert reference.stats == batched.stats


@pytest.mark.parametrize("seed", range(4))
def test_sampling_backend_identical(seed):
    problem = generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=10, num_workers=25), seed
    )
    reference = SamplingSolver(num_samples=40).solve(problem, rng=seed)
    batched = SamplingSolver(num_samples=40, backend="numpy").solve(problem, rng=seed)
    assert sorted(reference.assignment.pairs()) == sorted(batched.assignment.pairs())
    assert reference.objective == batched.objective


@pytest.mark.parametrize("seed", range(6))
def test_batch_draw_matches_scalar_stream(seed):
    problem = generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=10, num_workers=30), seed
    )
    table = CandidateTable.from_problem(problem)
    scalar = draw_random_assignment(problem, np.random.default_rng(seed))
    batched = draw_random_assignment_batch(table, np.random.default_rng(seed))
    assert sorted(scalar.pairs()) == sorted(batched.pairs())


def test_session_backend_identical():
    from repro.dynamic import CrowdsourcingSession

    problem = generate_problem(sparse_config(), 3)
    outcomes = []
    for backend in ("python", "numpy"):
        session = CrowdsourcingSession(
            SamplingSolver(num_samples=30), eta=0.25, rng=5, backend=backend
        )
        for task in problem.tasks:
            session.add_task(task)
        for worker in problem.workers:
            session.add_worker(worker)
        outcomes.append(session.reassign(now=0.0))
    first, second = outcomes
    assert first.num_pairs == second.num_pairs
    assert sorted(first.assignment.pairs()) == sorted(second.assignment.pairs())
    assert first.objective == second.objective


def test_backend_validation():
    with pytest.raises(ValueError):
        RdbscProblem([], [], backend="fortran")
    with pytest.raises(ValueError):
        GreedySolver(backend="fortran")
    with pytest.raises(ValueError):
        SamplingSolver(backend="fortran")
    with pytest.raises(ValueError):
        RdbscGrid(0.25, backend="fortran")


# --------------------------------------------------------------------- #
# Scoring / pruning kernels
# --------------------------------------------------------------------- #


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-4.0, max_value=4.0).map(lambda v: round(v, 1)),
            st.floats(min_value=0.0, max_value=2.0).map(lambda v: round(v, 1)),
            st.floats(min_value=0.0, max_value=2.0).map(lambda v: round(v, 1)),
        ),
        min_size=0,
        max_size=24,
    )
)
@settings(max_examples=200, deadline=None)
def test_lemma43_prune_matches_scalar(raw):
    """The vectorised sweep reproduces scalar pruning, ties included.

    Rounding the drawn floats to one decimal forces plenty of exact ties
    on ``Δmin_R`` and on the lower bounds — the hard part of the lemma.
    """
    candidates = [
        CandidateBounds(k, k, dr, min(lb, ub), max(lb, ub))
        for k, (dr, lb, ub) in enumerate(raw)
    ]
    scalar = prune_candidates(candidates)
    order = lemma43_prune_order(
        np.array([c.delta_min_r for c in candidates]),
        np.array([c.lb_delta_std for c in candidates]),
        np.array([c.ub_delta_std for c in candidates]),
    )
    assert [candidates[k] for k in order.tolist()] == scalar


@pytest.mark.parametrize("seed", range(4))
def test_batch_delta_min_r_matches_evaluator(seed):
    problem = generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=8, num_workers=20), seed
    )
    evaluator = IncrementalEvaluator(problem)
    # Partially fill the evaluator so candidates hit every branch: empty
    # tasks, occupied tasks, the current-minimum task.
    rng = np.random.default_rng(seed)
    for worker in problem.workers[::3]:
        tasks = problem.candidate_tasks(worker.worker_id)
        if tasks:
            evaluator.apply(tasks[int(rng.integers(0, len(tasks)))], worker.worker_id)
    min_two = evaluator.min_two_r()
    pairs = [
        (task_id, worker.worker_id)
        for worker in problem.workers
        for task_id in problem.candidate_tasks(worker.worker_id)
    ]
    if not pairs:
        pytest.skip("degenerate instance with no valid pairs")
    task_r = np.array([evaluator.state_of(t).r_value for t, _ in pairs])
    task_has = np.array([bool(evaluator.state_of(t).profiles) for t, _ in pairs])
    weights = np.array(
        [problem.workers_by_id[w].log_confidence_weight for _, w in pairs]
    )
    batched = batch_delta_min_r(task_r, task_has, weights, *min_two)
    for k, (task_id, worker_id) in enumerate(pairs):
        assert batched[k] == evaluator.delta_min_r(task_id, worker_id, min_two)
