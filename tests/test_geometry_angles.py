"""Unit and property tests for repro.geometry.angles."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.angles import (
    TWO_PI,
    AngleInterval,
    angular_difference,
    bearing,
    circular_gaps,
    enclosing_interval,
    normalize_angle,
)
from repro.geometry.points import Point

angles = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_negative_wraps(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_two_pi_wraps_to_zero(self):
        assert normalize_angle(TWO_PI) == pytest.approx(0.0)

    def test_large_multiple(self):
        assert normalize_angle(7 * TWO_PI + 0.25) == pytest.approx(0.25)

    @given(angles)
    def test_always_in_range(self, theta):
        result = normalize_angle(theta)
        assert 0.0 <= result < TWO_PI

    @given(angles)
    def test_idempotent(self, theta):
        once = normalize_angle(theta)
        assert normalize_angle(once) == pytest.approx(once)


class TestBearing:
    def test_east(self):
        assert bearing(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)

    def test_north(self):
        assert bearing(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_west(self):
        assert bearing(Point(0, 0), Point(-1, 0)) == pytest.approx(math.pi)

    def test_south(self):
        assert bearing(Point(0, 0), Point(0, -1)) == pytest.approx(3 * math.pi / 2)

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            bearing(Point(0.5, 0.5), Point(0.5, 0.5))

    @given(angles, st.floats(min_value=0.01, max_value=10.0, allow_nan=False))
    def test_roundtrip(self, theta, radius):
        origin = Point(0.0, 0.0)
        target = Point(radius * math.cos(theta), radius * math.sin(theta))
        assert angular_difference(bearing(origin, target), theta) < 1e-9


class TestAngularDifference:
    def test_zero(self):
        assert angular_difference(1.0, 1.0) == 0.0

    def test_wraps_shortest_way(self):
        assert angular_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    def test_never_exceeds_pi(self):
        assert angular_difference(0.0, math.pi + 0.5) <= math.pi


class TestAngleInterval:
    def test_contains_inside(self):
        cone = AngleInterval(0.0, math.pi / 2)
        assert cone.contains(math.pi / 4)

    def test_excludes_outside(self):
        cone = AngleInterval(0.0, math.pi / 2)
        assert not cone.contains(math.pi)

    def test_wrap_around_contains(self):
        cone = AngleInterval(TWO_PI - 0.5, 1.0)  # spans the 0 axis
        assert cone.contains(0.25)
        assert cone.contains(TWO_PI - 0.25)
        assert not cone.contains(math.pi)

    def test_full_circle_contains_everything(self):
        full = AngleInterval.full_circle()
        assert full.is_full()
        for theta in (0.0, 1.0, math.pi, 5.0):
            assert full.contains(theta)

    def test_zero_width_contains_only_edge(self):
        ray = AngleInterval(1.0, 0.0)
        assert ray.contains(1.0)
        assert not ray.contains(1.1)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            AngleInterval(0.0, -0.1)

    def test_from_bounds_regular(self):
        cone = AngleInterval.from_bounds(1.0, 2.0)
        assert cone.lo == pytest.approx(1.0)
        assert cone.width == pytest.approx(1.0)

    def test_from_bounds_wrapping(self):
        cone = AngleInterval.from_bounds(6.0, 7.0)  # hi past 2*pi
        assert cone.contains(6.2)
        assert cone.contains(0.3)

    def test_from_bounds_full(self):
        assert AngleInterval.from_bounds(0.0, TWO_PI).is_full()
        assert AngleInterval.from_bounds(1.0, 1.0 + TWO_PI).is_full()

    def test_hi_property(self):
        assert AngleInterval(1.0, 2.0).hi == pytest.approx(3.0)

    def test_midpoint(self):
        assert AngleInterval(0.0, math.pi).midpoint() == pytest.approx(math.pi / 2)

    def test_midpoint_wrapping(self):
        cone = AngleInterval(TWO_PI - 0.5, 1.0)
        assert cone.midpoint() == pytest.approx(0.0, abs=1e-9)

    def test_overlaps_shared_region(self):
        a = AngleInterval(0.0, 1.0)
        b = AngleInterval(0.5, 1.0)
        assert a.overlaps(b) and b.overlaps(a)

    def test_overlaps_disjoint(self):
        a = AngleInterval(0.0, 0.5)
        b = AngleInterval(2.0, 0.5)
        assert not a.overlaps(b) and not b.overlaps(a)

    def test_overlaps_full(self):
        assert AngleInterval.full_circle().overlaps(AngleInterval(1.0, 0.0))

    def test_expanded(self):
        cone = AngleInterval(1.0, 0.5).expanded(0.25)
        assert cone.contains(0.8)
        assert cone.contains(1.7)

    def test_expanded_negative_raises(self):
        with pytest.raises(ValueError):
            AngleInterval(0.0, 1.0).expanded(-0.1)

    @given(angles, st.floats(min_value=0.0, max_value=TWO_PI), angles)
    def test_contains_respects_width(self, lo, width, theta):
        from repro.geometry.angles import ANGLE_EPS

        cone = AngleInterval(lo, width)
        offset = normalize_angle(theta - cone.lo)
        expected = (
            cone.is_full()
            or offset <= cone.width + ANGLE_EPS
            or offset >= TWO_PI - ANGLE_EPS  # wrap: same direction, huge theta
        )
        assert cone.contains(theta) == expected


class TestCircularGaps:
    def test_empty(self):
        assert circular_gaps([]) == []

    def test_single_ray_full_gap(self):
        gaps = circular_gaps([1.0])
        assert gaps == [pytest.approx(TWO_PI)]

    def test_two_opposite_rays(self):
        gaps = circular_gaps([0.0, math.pi])
        assert sorted(gaps) == [pytest.approx(math.pi), pytest.approx(math.pi)]

    def test_duplicate_rays_zero_gap(self):
        gaps = sorted(circular_gaps([1.0, 1.0]))
        assert gaps[0] == pytest.approx(0.0)
        assert gaps[1] == pytest.approx(TWO_PI)

    @given(st.lists(angles, min_size=1, max_size=12))
    def test_gaps_sum_to_two_pi(self, raw):
        gaps = circular_gaps(raw)
        assert len(gaps) == len(raw)
        assert sum(gaps) == pytest.approx(TWO_PI)
        assert all(g >= 0.0 for g in gaps)


class TestEnclosingInterval:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            enclosing_interval([])

    def test_single_angle_zero_width(self):
        cone = enclosing_interval([2.0])
        assert cone.width == 0.0
        assert cone.contains(2.0)

    def test_cluster(self):
        cone = enclosing_interval([0.1, 0.2, 0.4])
        assert cone.lo == pytest.approx(0.1)
        assert cone.width == pytest.approx(0.3)

    def test_cluster_across_zero(self):
        cone = enclosing_interval([TWO_PI - 0.1, 0.1])
        assert cone.width == pytest.approx(0.2)
        assert cone.contains(0.0)

    @given(st.lists(angles, min_size=1, max_size=10))
    def test_contains_all_inputs(self, raw):
        cone = enclosing_interval(raw)
        for theta in raw:
            assert cone.contains(theta)

    @given(st.lists(angles, min_size=2, max_size=10))
    def test_is_minimal_among_candidates(self, raw):
        # The enclosing interval is no wider than the circle minus the
        # biggest gap between consecutive input directions.
        cone = enclosing_interval(raw)
        biggest_gap = max(circular_gaps(raw))
        assert cone.width <= TWO_PI - biggest_gap + 1e-9
