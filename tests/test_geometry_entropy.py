"""Unit and property tests for repro.geometry.entropy."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.entropy import entropy, entropy_of_partition, entropy_term, max_entropy

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestEntropyTerm:
    def test_zero_is_zero(self):
        assert entropy_term(0.0) == 0.0

    def test_one_is_zero(self):
        assert entropy_term(1.0) == 0.0

    def test_half(self):
        assert entropy_term(0.5) == pytest.approx(0.5 * math.log(2.0))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            entropy_term(1.5)
        with pytest.raises(ValueError):
            entropy_term(-0.5)

    @given(fractions)
    def test_non_negative(self, f):
        assert entropy_term(f) >= 0.0

    def test_maximum_at_1_over_e(self):
        peak = entropy_term(1.0 / math.e)
        for f in (0.1, 0.2, 0.5, 0.9):
            assert entropy_term(f) <= peak + 1e-12


class TestEntropy:
    def test_uniform_partition(self):
        assert entropy([0.25] * 4) == pytest.approx(math.log(4.0))

    def test_degenerate_partition(self):
        assert entropy([1.0, 0.0, 0.0]) == 0.0

    @given(st.integers(min_value=1, max_value=20))
    def test_uniform_maximises(self, n):
        assert entropy([1.0 / n] * n) == pytest.approx(max_entropy(n))


class TestEntropyOfPartition:
    def test_normalises(self):
        # Partition 10 into 5 + 5 == fractions (0.5, 0.5).
        assert entropy_of_partition([5.0, 5.0], 10.0) == pytest.approx(math.log(2.0))

    def test_zero_total_is_zero(self):
        assert entropy_of_partition([1.0, 2.0], 0.0) == 0.0

    def test_negative_part_raises(self):
        with pytest.raises(ValueError):
            entropy_of_partition([-1.0, 2.0], 1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=10))
    def test_bounded_by_log_n(self, parts):
        total = sum(parts)
        if total <= 0.0:
            assert entropy_of_partition(parts, max(total, 1.0)) == 0.0
        else:
            assert entropy_of_partition(parts, total) <= max_entropy(len(parts)) + 1e-9


class TestMaxEntropy:
    def test_single_part(self):
        assert max_entropy(1) == 0.0

    def test_zero_parts(self):
        assert max_entropy(0) == 0.0

    def test_matches_log(self):
        assert max_entropy(7) == pytest.approx(math.log(7.0))
