"""Unit tests for repro.geometry.motion."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.motion import (
    arrival_time,
    position_along,
    reachable_radius,
    travel_time,
)
from repro.geometry.points import Point


class TestTravelTime:
    def test_unit_speed(self):
        assert travel_time(Point(0, 0), Point(3, 4), 1.0) == pytest.approx(5.0)

    def test_double_speed_halves_time(self):
        assert travel_time(Point(0, 0), Point(3, 4), 2.0) == pytest.approx(2.5)

    def test_zero_distance_zero_time(self):
        assert travel_time(Point(1, 1), Point(1, 1), 0.0) == 0.0

    def test_zero_speed_infinite(self):
        assert math.isinf(travel_time(Point(0, 0), Point(1, 0), 0.0))

    def test_negative_speed_raises(self):
        with pytest.raises(ValueError):
            travel_time(Point(0, 0), Point(1, 0), -1.0)


class TestArrivalTime:
    def test_depart_offset(self):
        assert arrival_time(Point(0, 0), Point(1, 0), 0.5, depart_time=3.0) == pytest.approx(5.0)

    @given(
        st.floats(min_value=0.01, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_arrival_never_before_departure(self, speed, depart):
        assert arrival_time(Point(0, 0), Point(1, 1), speed, depart) >= depart


class TestReachableRadius:
    def test_basic(self):
        assert reachable_radius(2.0, 5.0, now=3.0) == pytest.approx(4.0)

    def test_past_deadline_zero(self):
        assert reachable_radius(2.0, 5.0, now=6.0) == 0.0

    def test_exact_deadline_zero(self):
        assert reachable_radius(2.0, 5.0, now=5.0) == 0.0


class TestPositionAlong:
    def test_endpoints(self):
        a, b = Point(0, 0), Point(2, 2)
        assert position_along(a, b, 0.0) == a
        assert position_along(a, b, 1.0) == b

    def test_midpoint(self):
        assert position_along(Point(0, 0), Point(2, 0), 0.5) == Point(1.0, 0.0)

    def test_clamps_fraction(self):
        a, b = Point(0, 0), Point(1, 0)
        assert position_along(a, b, -0.5) == a
        assert position_along(a, b, 1.5) == b
