"""Unit tests for repro.geometry.points."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.points import Point, bounding_box, centroid, distance, midpoint

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_iter_unpacks(self):
        x, y = Point(1.5, -2.0)
        assert (x, y) == (1.5, -2.0)

    def test_as_tuple(self):
        assert Point(0.25, 0.75).as_tuple() == (0.25, 0.75)

    def test_translated(self):
        assert Point(1.0, 2.0).translated(0.5, -1.0) == Point(1.5, 1.0)

    def test_is_hashable_and_frozen(self):
        p = Point(0.0, 0.0)
        assert hash(p) == hash(Point(0.0, 0.0))
        with pytest.raises(Exception):
            p.x = 1.0  # type: ignore[misc]

    def test_distance_3_4_5(self):
        assert distance(Point(0.0, 0.0), Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        assert Point(0.7, 0.1).distance_to(Point(0.7, 0.1)) == 0.0

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


class TestMidpointCentroid:
    def test_midpoint(self):
        assert midpoint(Point(0.0, 0.0), Point(2.0, 4.0)) == Point(1.0, 2.0)

    def test_centroid_single(self):
        assert centroid([Point(3.0, 4.0)]) == Point(3.0, 4.0)

    def test_centroid_square(self):
        square = [Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)]
        assert centroid(square) == Point(0.5, 0.5)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestBoundingBox:
    def test_single_point(self):
        lo, hi = bounding_box([Point(0.3, 0.4)])
        assert lo == hi == Point(0.3, 0.4)

    def test_spread(self):
        lo, hi = bounding_box([Point(0.2, 0.9), Point(0.8, 0.1), Point(0.5, 0.5)])
        assert lo == Point(0.2, 0.1)
        assert hi == Point(0.8, 0.9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
