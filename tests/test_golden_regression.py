"""Golden regression: every solver must keep reproducing a pinned instance.

``tests/fixtures/golden_small.json`` records, for one small deterministic
instance, each solver's exact ``(min_rel, E[STD])`` objective.  The test
rebuilds the instance from its generator seed and re-solves; any drift in
the generators, the validity rule, the objective evaluation or a solver's
decision sequence shows up as a mismatch here — refactors (like the numpy
fast path) must leave every number alone.

Regenerate deliberately after a *intended* behaviour change with::

    PYTHONPATH=src python tests/test_golden_regression.py --regenerate
"""

import json
import math
from pathlib import Path

import pytest

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    MaxTaskSolver,
    RandomSolver,
    SamplingSolver,
)
from repro.datagen import ExperimentConfig, generate_problem

FIXTURE = Path(__file__).parent / "fixtures" / "golden_small.json"

#: The pinned instance: scaled Table 2 defaults, small enough for every
#: solver (including D&C) to finish in milliseconds.
GOLDEN_TASKS = 8
GOLDEN_WORKERS = 16
GOLDEN_INSTANCE_SEED = 2026
GOLDEN_SOLVER_SEED = 7


def golden_problem(backend: str = "python"):
    config = ExperimentConfig.scaled_defaults(
        num_tasks=GOLDEN_TASKS, num_workers=GOLDEN_WORKERS
    )
    return generate_problem(config, GOLDEN_INSTANCE_SEED, backend=backend)


def golden_solvers():
    """Fresh solver instances, keyed as in the fixture.

    SAMPLING appears under both determinism contracts: the default
    substream contract (``"SAMPLING"`` / ``"SAMPLING-numpy"``, the pinned
    fixture for the pool-size-independent plans the parallel solve
    subsystem relies on) and the legacy shared-stream flag
    (``"SAMPLING-legacy"``), so a drift in either contract's draw order
    shows up here.
    """
    from repro.algorithms.sampling import SHARED_STREAM_V0

    return {
        "GREEDY": GreedySolver(),
        "GREEDY-numpy": GreedySolver(backend="numpy"),
        "SAMPLING": SamplingSolver(num_samples=64),
        "SAMPLING-numpy": SamplingSolver(num_samples=64, backend="numpy"),
        "SAMPLING-legacy": SamplingSolver(
            num_samples=64, rng_contract=SHARED_STREAM_V0
        ),
        "D&C": DivideConquerSolver(
            gamma=4, base_solver=SamplingSolver(num_samples=64)
        ),
        "MAX-TASK": MaxTaskSolver(),
        "RANDOM": RandomSolver(),
    }


def solve_all(backend: str = "python"):
    problem = golden_problem(backend)
    out = {}
    for name, solver in golden_solvers().items():
        result = solver.solve(problem, rng=GOLDEN_SOLVER_SEED)
        out[name] = {
            "min_rel": result.objective.min_reliability,
            "estd": result.objective.total_std,
        }
    return out


def golden_dstd(backend: str = "python"):
    """Exact ΔE[STD] sums over every valid pair, scalar and batched.

    Two evaluator depths are pinned: the empty evaluator (every row is a
    single appended profile) and the evaluator after the GREEDY plan
    (rows with real base profiles).  The batched kernel must carry the
    exact bits of the scalar per-pair calls, so one number pins both.
    """
    from repro.core.objectives import IncrementalEvaluator
    from repro.fastpath import batch_delta_estd

    problem = golden_problem(backend)
    pairs = sorted(
        (task_id, worker.worker_id)
        for worker in problem.workers
        for task_id in problem.candidate_tasks(worker.worker_id)
    )
    out = {"num_pairs": len(pairs)}
    plan = GreedySolver().solve(problem, rng=GOLDEN_SOLVER_SEED)
    for key, assigned in (("empty", []), ("after_greedy", sorted(plan.assignment.pairs()))):
        evaluator = IncrementalEvaluator(problem)
        for task_id, worker_id in assigned:
            evaluator.apply(task_id, worker_id)
        scalar = [evaluator.delta_estd(t, w) for t, w in pairs]
        batched = batch_delta_estd(problem, evaluator, pairs)
        for k in range(len(pairs)):
            assert batched[k] == scalar[k], (key, pairs[k])
        total = 0.0
        for value in scalar:
            total += value
        out[key] = total
    return out


@pytest.fixture(scope="module")
def fixture_data():
    with FIXTURE.open() as handle:
        return json.load(handle)


def test_fixture_describes_this_instance(fixture_data):
    meta = fixture_data["instance"]
    assert meta["num_tasks"] == GOLDEN_TASKS
    assert meta["num_workers"] == GOLDEN_WORKERS
    assert meta["seed"] == GOLDEN_INSTANCE_SEED
    problem = golden_problem()
    assert problem.num_pairs == meta["num_pairs"]


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_solvers_reproduce_golden_objectives(fixture_data, backend):
    expected = fixture_data["solvers"]
    actual = solve_all(backend)
    assert sorted(actual) == sorted(expected)
    for name, values in expected.items():
        got = actual[name]
        assert math.isclose(got["min_rel"], values["min_rel"], rel_tol=1e-9, abs_tol=1e-12), (
            name,
            got,
            values,
        )
        assert math.isclose(got["estd"], values["estd"], rel_tol=1e-9, abs_tol=1e-12), (
            name,
            got,
            values,
        )


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_dstd_reproduces_golden_sums(fixture_data, backend):
    expected = fixture_data["dstd"]
    actual = golden_dstd(backend)
    assert actual["num_pairs"] == expected["num_pairs"]
    # Exact equality: the fixture floats round-trip bit-exactly through
    # JSON repr, and golden_dstd already asserted batched == scalar bits.
    assert actual["empty"] == expected["empty"]
    assert actual["after_greedy"] == expected["after_greedy"]


def regenerate() -> None:
    problem = golden_problem()
    payload = {
        "instance": {
            "num_tasks": GOLDEN_TASKS,
            "num_workers": GOLDEN_WORKERS,
            "seed": GOLDEN_INSTANCE_SEED,
            "solver_seed": GOLDEN_SOLVER_SEED,
            "num_pairs": problem.num_pairs,
        },
        "solvers": solve_all(),
        "dstd": golden_dstd(),
    }
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
