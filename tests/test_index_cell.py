"""Tests for grid cells and their aggregate bounds."""

import math

import pytest

from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.index.cell import GridCell, _widen
from tests.conftest import make_task, make_worker


def cell_at(row=0, col=0, side=0.25):
    return GridCell(row * 4 + col, row, col, Point(col * side, row * side), side)


class TestGeometry:
    def test_corners(self):
        cell = cell_at(0, 0, 0.25)
        assert set(cell.corners()) == {
            Point(0.0, 0.0),
            Point(0.25, 0.0),
            Point(0.0, 0.25),
            Point(0.25, 0.25),
        }

    def test_min_distance_adjacent_zero(self):
        a, b = cell_at(0, 0), cell_at(0, 1)
        assert a.min_distance_to(b) == 0.0

    def test_min_distance_with_gap(self):
        a, b = cell_at(0, 0), cell_at(0, 2)
        assert a.min_distance_to(b) == pytest.approx(0.25)

    def test_min_distance_diagonal(self):
        a, b = cell_at(0, 0), cell_at(2, 2)
        assert a.min_distance_to(b) == pytest.approx(0.25 * math.sqrt(2.0))

    def test_max_distance(self):
        a, b = cell_at(0, 0), cell_at(0, 1)
        assert a.max_distance_to(b) == pytest.approx(math.hypot(0.5, 0.25))

    def test_min_distance_symmetry(self):
        a, b = cell_at(1, 0), cell_at(3, 2)
        assert a.min_distance_to(b) == pytest.approx(b.min_distance_to(a))


class TestAggregates:
    def test_empty_cell_defaults(self):
        cell = cell_at()
        assert cell.v_max == 0.0
        assert cell.e_max == -math.inf
        assert cell.s_min == math.inf
        assert cell.cone_union is None
        assert cell.is_empty

    def test_task_bounds(self):
        cell = cell_at()
        cell.add_task(make_task(0, start=2.0, end=5.0))
        cell.add_task(make_task(1, start=1.0, end=9.0))
        assert cell.s_min == 1.0
        assert cell.e_max == 9.0

    def test_worker_bounds(self):
        cell = cell_at()
        cell.add_worker(make_worker(0, velocity=0.2))
        cell.add_worker(make_worker(1, velocity=0.7))
        assert cell.v_max == pytest.approx(0.7)

    def test_removal_refreshes_aggregates(self):
        cell = cell_at()
        cell.add_worker(make_worker(0, velocity=0.2))
        cell.add_worker(make_worker(1, velocity=0.7))
        cell.remove_worker(1)
        assert cell.v_max == pytest.approx(0.2)
        cell.add_task(make_task(0, start=0.0, end=5.0))
        cell.add_task(make_task(1, start=0.0, end=9.0))
        cell.remove_task(1)
        assert cell.e_max == 5.0

    def test_cone_union_grows(self):
        cell = cell_at()
        cell.add_worker(make_worker(0, cone=AngleInterval(0.0, 0.5)))
        cell.add_worker(make_worker(1, cone=AngleInterval(1.0, 0.5)))
        union = cell.cone_union
        assert union.contains(0.2)
        assert union.contains(1.2)

    def test_cone_union_full_when_workers_cover_circle(self):
        cell = cell_at()
        cell.add_worker(make_worker(0, cone=AngleInterval(0.0, math.pi)))
        cell.add_worker(make_worker(1, cone=AngleInterval(math.pi, math.pi)))
        assert cell.cone_union.is_full()


class TestWiden:
    def test_none_base(self):
        cone = AngleInterval(1.0, 0.5)
        assert _widen(None, cone) == cone

    def test_contained_addition_no_change(self):
        base = AngleInterval(0.0, 2.0)
        addition = AngleInterval(0.5, 0.5)
        assert _widen(base, addition) == base

    def test_disjoint_intervals_bridged(self):
        a = AngleInterval(0.0, 0.5)
        b = AngleInterval(2.0, 0.5)
        union = _widen(a, b)
        for theta in (0.0, 0.4, 2.0, 2.4):
            assert union.contains(theta)

    def test_result_always_superset(self):
        import itertools

        candidates = [
            AngleInterval(lo, width)
            for lo, width in itertools.product((0.0, 1.5, 4.0), (0.3, 2.0, 5.0))
        ]
        for a, b in itertools.product(candidates, candidates):
            union = _widen(a, b)
            for theta in (a.lo, a.hi, b.lo, b.hi):
                assert union.contains(theta)
