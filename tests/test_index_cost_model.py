"""Tests for the Appendix I cost model (Eqs. 22-23) and D2 estimation."""

import math

import numpy as np
import pytest

from repro.geometry.points import Point
from repro.index.cost_model import numeric_optimal_eta, optimal_eta, update_cost
from repro.index.fractal import box_pair_counts, correlation_dimension


class TestUpdateCost:
    def test_positive(self):
        assert update_cost(0.1, l_max=0.3, n_tasks=100) > 0.0

    def test_tiny_cells_expensive(self):
        # Many cells to scan: cost must blow up as eta -> 0.
        assert update_cost(0.001, 0.3, 100) > update_cost(0.1, 0.3, 100)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            update_cost(0.0, 0.3, 100)
        with pytest.raises(ValueError):
            update_cost(0.1, -1.0, 100)
        with pytest.raises(ValueError):
            update_cost(0.1, 0.3, 1)
        with pytest.raises(ValueError):
            update_cost(0.1, 0.3, 100, d2=2.5)


class TestOptimalEta:
    def test_uniform_closed_form(self):
        # D2 = 2: eta = cbrt(L / (N - 1)); the paper's Appendix I formula.
        eta = optimal_eta(l_max=0.2, n_tasks=101, d2=2.0)
        assert eta == pytest.approx((0.2 / 100) ** (1 / 3))

    def test_matches_numeric_minimiser(self):
        for d2 in (1.2, 1.5, 1.8, 2.0):
            analytic = optimal_eta(l_max=0.5, n_tasks=200, d2=d2, eta_min=1e-4)
            numeric = numeric_optimal_eta(l_max=0.5, n_tasks=200, d2=d2)
            assert analytic == pytest.approx(numeric, rel=0.05)

    def test_larger_reach_larger_cells(self):
        small = optimal_eta(l_max=0.05, n_tasks=100)
        large = optimal_eta(l_max=0.8, n_tasks=100)
        assert large > small

    def test_more_tasks_smaller_cells(self):
        few = optimal_eta(l_max=0.3, n_tasks=50)
        many = optimal_eta(l_max=0.3, n_tasks=5000)
        assert many < few

    def test_clamped_into_range(self):
        eta = optimal_eta(l_max=100.0, n_tasks=2, eta_max=0.5)
        assert eta <= 0.5
        eta = optimal_eta(l_max=1e-9, n_tasks=10_000_000, eta_min=0.01)
        assert eta >= 0.01


class TestFractalDimension:
    def test_uniform_near_two(self):
        rng = np.random.default_rng(0)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(size=(3000, 2))]
        d2 = correlation_dimension(points)
        assert 1.7 <= d2 <= 2.0

    def test_clustered_below_uniform(self):
        rng = np.random.default_rng(1)
        uniform = [Point(float(x), float(y)) for x, y in rng.uniform(size=(2000, 2))]
        cluster = np.clip(rng.normal(0.5, 0.05, size=(2000, 2)), 0, 1)
        clustered = [Point(float(x), float(y)) for x, y in cluster]
        assert correlation_dimension(clustered) < correlation_dimension(uniform)

    def test_line_near_one(self):
        points = [Point(i / 2999.0, 0.5) for i in range(3000)]
        d2 = correlation_dimension(points)
        assert 0.7 <= d2 <= 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            correlation_dimension([Point(0, 0)])
        with pytest.raises(ValueError):
            correlation_dimension([Point(0, 0), Point(1, 1)], r_min=0.5, r_max=0.4)
        with pytest.raises(ValueError):
            correlation_dimension([Point(0, 0), Point(1, 1)], n_scales=1)

    def test_box_pair_counts_monotone_in_r(self):
        rng = np.random.default_rng(2)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(size=(500, 2))]
        counts = box_pair_counts(points, [0.05, 0.1, 0.2, 0.4])
        values = [s2 for _, s2 in counts]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_box_pair_counts_validation(self):
        with pytest.raises(ValueError):
            box_pair_counts([], [0.1])
        with pytest.raises(ValueError):
            box_pair_counts([Point(0, 0)], [0.0])
