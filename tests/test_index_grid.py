"""Tests for the RDB-SC-Grid index: correctness vs brute force, dynamics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import RdbscProblem
from repro.core.validity import ValidityRule
from repro.datagen import ExperimentConfig, generate_problem, generate_tasks, generate_workers
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index
from tests.conftest import make_task, make_worker


def pair_set(pairs):
    return sorted((p.task_id, p.worker_id) for p in pairs)


def build_instance(seed, m=30, n=40):
    config = ExperimentConfig(
        num_tasks=m,
        num_workers=n,
        start_time_range=(0.0, 1.5),
        expiration_range=(0.5, 1.5),
        velocity_range=(0.05, 0.3),
        angle_range_max=math.pi,
    )
    import numpy as np

    rng = np.random.default_rng(seed)
    return generate_tasks(config, rng), generate_workers(config, rng)


class TestRetrievalCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("eta", [0.05, 0.13, 0.33, 1.0])
    def test_matches_brute_force(self, seed, eta):
        tasks, workers = build_instance(seed)
        grid = RdbscGrid.bulk_load(tasks, workers, eta)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_without_exact_confirm_also_correct(self):
        tasks, workers = build_instance(5)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.1, exact_confirm=False)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_waiting_validity_respected(self):
        tasks, workers = build_instance(7)
        rule = ValidityRule(allow_waiting=True)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.2, rule)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers, rule)
        )

    def test_problem_from_index_pairs(self):
        tasks, workers = build_instance(9)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.15)
        via_index = RdbscProblem(tasks, workers, precomputed_pairs=grid.valid_pairs())
        direct = RdbscProblem(tasks, workers)
        assert via_index.num_pairs == direct.num_pairs


class TestDynamicMaintenance:
    def test_worker_churn_preserves_correctness(self):
        tasks, workers = build_instance(11)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.12)
        grid.build_all_tcell_lists()
        removed = [w for w in workers[:10]]
        for worker in removed:
            grid.remove_worker(worker.worker_id)
        remaining = workers[10:]
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, remaining)
        )
        for worker in removed:
            grid.insert_worker(worker)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_task_churn_preserves_correctness(self):
        tasks, workers = build_instance(13)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.12)
        grid.build_all_tcell_lists()
        for task in tasks[:8]:
            grid.remove_task(task.task_id)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks[8:], workers)
        )
        for task in tasks[:8]:
            grid.insert_task(task)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_duplicate_insert_rejected(self):
        tasks, workers = build_instance(15)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.2)
        with pytest.raises(ValueError):
            grid.insert_task(tasks[0])
        with pytest.raises(ValueError):
            grid.insert_worker(workers[0])

    def test_remove_unknown_raises(self):
        grid = RdbscGrid(0.25)
        with pytest.raises(KeyError):
            grid.remove_task(42)
        with pytest.raises(KeyError):
            grid.remove_worker(42)

    def test_empty_cells_dropped(self):
        grid = RdbscGrid(0.25)
        task = make_task(0, x=0.1, y=0.1)
        grid.insert_task(task)
        assert grid.num_cells == 1
        grid.remove_task(0)
        assert grid.num_cells == 0


class TestPruningStats:
    def test_pruning_happens_in_local_regime(self):
        config = ExperimentConfig(
            num_tasks=80,
            num_workers=80,
            start_time_range=(0.0, 1.0),
            expiration_range=(0.25, 0.5),
            velocity_range=(0.02, 0.08),
            angle_range_max=math.pi / 3,
        )
        problem = generate_problem(config, 3)
        grid = RdbscGrid.bulk_load(problem.tasks, problem.workers, 0.08)
        grid.build_all_tcell_lists()
        assert grid.stats["cells_pruned_time"] + grid.stats["cells_pruned_angle"] > 0

    def test_eta_validation(self):
        with pytest.raises(ValueError):
            RdbscGrid(0.0)
        with pytest.raises(ValueError):
            RdbscGrid(1.5)


class TestRectDistanceCacheAndGroupScreen:
    """The cell-pair distance cache and the vectorised widening screen."""

    def test_cell_pair_distance_cached_and_exact(self):
        grid = RdbscGrid(0.125)
        a = grid.cell_at(make_task(0, x=0.1, y=0.1).location)
        b = grid.cell_at(make_task(1, x=0.9, y=0.6).location)
        first = grid.cell_pair_distance(a, b)
        assert first == a.min_distance_to(b)
        assert grid.cell_pair_distance(b, a) == first  # symmetric key
        assert len(grid._rect_dist) == 1
        grid.cell_pair_distance(a, a)
        assert grid.cell_pair_distance(a, a) == 0.0
        assert len(grid._rect_dist) == 2

    def test_group_widening_screen_preserves_retrieval(self):
        """Batched arrivals after the cached list exists: pairs still exact."""
        import numpy as np

        rng = np.random.default_rng(31)
        config = ExperimentConfig(
            num_tasks=40,
            num_workers=60,
            start_time_range=(0.0, 0.6),
            expiration_range=(0.3, 0.9),
            velocity_range=(0.02, 0.1),
            angle_range_max=math.pi / 2,
        )
        tasks = list(generate_tasks(config, rng))
        workers = list(generate_workers(config, rng))
        grid = RdbscGrid(0.1)
        for task in tasks:
            grid.insert_task(task)
        for worker in workers[:20]:
            grid.insert_worker(worker)
        grid.valid_pairs()  # materialise cached lists before the widening
        grid.insert_workers(workers[20:])  # one vectorised sweep per cell
        expected = retrieve_pairs_without_index(tasks, workers, grid.validity)
        got = grid.valid_pairs()
        assert sorted(
            (p.task_id, p.worker_id, p.arrival) for p in got
        ) == sorted((p.task_id, p.worker_id, p.arrival) for p in expected)
        # The cache fills as pruning probes run.
        assert grid._rect_dist

    def test_vectorised_screen_path_preserves_retrieval(self):
        """Enough candidate cells to cross the vector-screen threshold."""
        import numpy as np

        from repro.index.grid import _VECTOR_SCREEN_MIN

        rng = np.random.default_rng(37)
        tasks = [
            make_task(i, x=float(x), y=float(y), start=0.0, end=50.0)
            for i, (x, y) in enumerate(rng.uniform(0.0, 1.0, size=(240, 2)))
        ]
        grid = RdbscGrid(0.05)  # 20x20 cells: task cells well above the cutoff
        for task in tasks:
            grid.insert_task(task)
        anchor = make_worker(0, x=0.5, y=0.5, velocity=0.0)  # tiny tight list
        grid.insert_worker(anchor)
        grid.valid_pairs()  # materialise the cached list before the widening
        occupied = sum(1 for cell in grid.cells() if cell.tasks)
        assert occupied > _VECTOR_SCREEN_MIN  # the sweep takes the array path
        movers = [
            make_worker(1 + i, x=0.5, y=0.5, velocity=0.5) for i in range(3)
        ]
        grid.insert_workers(movers)
        workers = [anchor] + movers
        expected = retrieve_pairs_without_index(tasks, workers, grid.validity)
        got = grid.valid_pairs()
        assert sorted(
            (p.task_id, p.worker_id, p.arrival) for p in got
        ) == sorted((p.task_id, p.worker_id, p.arrival) for p in expected)
