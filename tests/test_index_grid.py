"""Tests for the RDB-SC-Grid index: correctness vs brute force, dynamics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import RdbscProblem
from repro.core.validity import ValidityRule
from repro.datagen import ExperimentConfig, generate_problem, generate_tasks, generate_workers
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index
from tests.conftest import make_task, make_worker


def pair_set(pairs):
    return sorted((p.task_id, p.worker_id) for p in pairs)


def build_instance(seed, m=30, n=40):
    config = ExperimentConfig(
        num_tasks=m,
        num_workers=n,
        start_time_range=(0.0, 1.5),
        expiration_range=(0.5, 1.5),
        velocity_range=(0.05, 0.3),
        angle_range_max=math.pi,
    )
    import numpy as np

    rng = np.random.default_rng(seed)
    return generate_tasks(config, rng), generate_workers(config, rng)


class TestRetrievalCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("eta", [0.05, 0.13, 0.33, 1.0])
    def test_matches_brute_force(self, seed, eta):
        tasks, workers = build_instance(seed)
        grid = RdbscGrid.bulk_load(tasks, workers, eta)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_without_exact_confirm_also_correct(self):
        tasks, workers = build_instance(5)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.1, exact_confirm=False)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_waiting_validity_respected(self):
        tasks, workers = build_instance(7)
        rule = ValidityRule(allow_waiting=True)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.2, rule)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers, rule)
        )

    def test_problem_from_index_pairs(self):
        tasks, workers = build_instance(9)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.15)
        via_index = RdbscProblem(tasks, workers, precomputed_pairs=grid.valid_pairs())
        direct = RdbscProblem(tasks, workers)
        assert via_index.num_pairs == direct.num_pairs


class TestDynamicMaintenance:
    def test_worker_churn_preserves_correctness(self):
        tasks, workers = build_instance(11)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.12)
        grid.build_all_tcell_lists()
        removed = [w for w in workers[:10]]
        for worker in removed:
            grid.remove_worker(worker.worker_id)
        remaining = workers[10:]
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, remaining)
        )
        for worker in removed:
            grid.insert_worker(worker)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_task_churn_preserves_correctness(self):
        tasks, workers = build_instance(13)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.12)
        grid.build_all_tcell_lists()
        for task in tasks[:8]:
            grid.remove_task(task.task_id)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks[8:], workers)
        )
        for task in tasks[:8]:
            grid.insert_task(task)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    def test_duplicate_insert_rejected(self):
        tasks, workers = build_instance(15)
        grid = RdbscGrid.bulk_load(tasks, workers, 0.2)
        with pytest.raises(ValueError):
            grid.insert_task(tasks[0])
        with pytest.raises(ValueError):
            grid.insert_worker(workers[0])

    def test_remove_unknown_raises(self):
        grid = RdbscGrid(0.25)
        with pytest.raises(KeyError):
            grid.remove_task(42)
        with pytest.raises(KeyError):
            grid.remove_worker(42)

    def test_empty_cells_dropped(self):
        grid = RdbscGrid(0.25)
        task = make_task(0, x=0.1, y=0.1)
        grid.insert_task(task)
        assert grid.num_cells == 1
        grid.remove_task(0)
        assert grid.num_cells == 0


class TestPruningStats:
    def test_pruning_happens_in_local_regime(self):
        config = ExperimentConfig(
            num_tasks=80,
            num_workers=80,
            start_time_range=(0.0, 1.0),
            expiration_range=(0.25, 0.5),
            velocity_range=(0.02, 0.08),
            angle_range_max=math.pi / 3,
        )
        problem = generate_problem(config, 3)
        grid = RdbscGrid.bulk_load(problem.tasks, problem.workers, 0.08)
        grid.build_all_tcell_lists()
        assert grid.stats["cells_pruned_time"] + grid.stats["cells_pruned_angle"] > 0

    def test_eta_validation(self):
        with pytest.raises(ValueError):
            RdbscGrid(0.0)
        with pytest.raises(ValueError):
            RdbscGrid(1.5)
