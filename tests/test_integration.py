"""End-to-end integration tests across subsystems."""

import math

import pytest

from repro import (
    DivideConquerSolver,
    ExperimentConfig,
    GreedySolver,
    GroundTruthSolver,
    SamplingSolver,
    evaluate_assignment,
    generate_problem,
)
from repro.core.problem import RdbscProblem
from repro.datagen import generate_real_substitute_problem
from repro.index.cost_model import optimal_eta
from repro.index.fractal import correlation_dimension
from repro.index.grid import RdbscGrid


ALL_SOLVERS = [
    GreedySolver(),
    SamplingSolver(num_samples=30),
    DivideConquerSolver(gamma=8, base_solver=SamplingSolver(num_samples=30)),
    GroundTruthSolver(gamma=8),
]


class TestSolversOnAllWorkloads:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    @pytest.mark.parametrize("distribution", ["uniform", "skewed"])
    def test_synthetic(self, solver, distribution):
        config = ExperimentConfig.scaled_defaults(
            num_tasks=16, num_workers=32
        ).with_updates(distribution=distribution)
        problem = generate_problem(config, 3)
        result = solver.solve(problem, rng=3)
        # Contract: valid pairs only, each worker once, objective consistent.
        seen = set()
        for task_id, worker_id in result.assignment.pairs():
            assert problem.is_valid_pair(task_id, worker_id)
            assert worker_id not in seen
            seen.add(worker_id)
        fresh = evaluate_assignment(problem, result.assignment)
        assert result.objective.total_std == pytest.approx(fresh.total_std)

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_real_substitute(self, solver):
        config = ExperimentConfig.scaled_defaults(num_tasks=20, num_workers=24)
        problem = generate_real_substitute_problem(config, 5)
        result = solver.solve(problem, rng=5)
        assert result.objective.min_reliability >= 0.0
        assert result.objective.total_std >= 0.0


class TestIndexDrivenPipeline:
    def test_index_fed_problem_solves_identically(self):
        """Full pipeline: cost model -> grid -> pair retrieval -> solver."""
        config = ExperimentConfig.scaled_defaults(num_tasks=18, num_workers=36)
        direct = generate_problem(config, 7)
        tasks, workers = direct.tasks, direct.workers

        d2 = correlation_dimension([t.location for t in tasks])
        horizon = max(t.end for t in tasks)
        l_max = min(max(w.velocity for w in workers) * horizon, math.sqrt(2.0))
        eta = min(max(optimal_eta(l_max, len(tasks), d2), 0.05), 0.5)

        grid = RdbscGrid.bulk_load(tasks, workers, eta, direct.validity)
        via_index = RdbscProblem(
            tasks, workers, direct.validity, precomputed_pairs=grid.valid_pairs()
        )
        assert via_index.num_pairs == direct.num_pairs

        for solver in (GreedySolver(), SamplingSolver(num_samples=25)):
            a = solver.solve(direct, rng=11)
            b = solver.solve(via_index, rng=11)
            assert a.objective.total_std == pytest.approx(b.objective.total_std)
            assert a.objective.min_reliability == pytest.approx(
                b.objective.min_reliability
            )

    def test_dynamic_index_stays_consistent_with_problem(self):
        config = ExperimentConfig.scaled_defaults(num_tasks=14, num_workers=20)
        problem = generate_problem(config, 9)
        grid = RdbscGrid.bulk_load(problem.tasks, problem.workers, 0.2, problem.validity)
        # Simulate churn: remove half the workers, re-add them.
        ids = [w.worker_id for w in problem.workers[:10]]
        for worker_id in ids:
            grid.remove_worker(worker_id)
        for worker_id in ids:
            grid.insert_worker(problem.workers_by_id[worker_id])
        rebuilt = RdbscProblem(
            problem.tasks,
            problem.workers,
            problem.validity,
            precomputed_pairs=grid.valid_pairs(),
        )
        assert rebuilt.num_pairs == problem.num_pairs


class TestQualityOrdering:
    def test_paper_ordering_small_m(self):
        """The headline Figure 13 claim at small m, averaged over seeds."""
        greedy_total = 0.0
        sampling_total = 0.0
        dc_total = 0.0
        for seed in (1, 2, 3, 4):
            config = ExperimentConfig.scaled_defaults(num_tasks=12, num_workers=48)
            problem = generate_problem(config, seed)
            greedy_total += GreedySolver().solve(problem, rng=seed).objective.total_std
            sampling_total += (
                SamplingSolver(num_samples=50).solve(problem, rng=seed).objective.total_std
            )
            dc_total += (
                DivideConquerSolver(gamma=5, base_solver=SamplingSolver(num_samples=50))
                .solve(problem, rng=seed)
                .objective.total_std
            )
        assert sampling_total > greedy_total
        assert dc_total > greedy_total
