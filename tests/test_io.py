"""Tests for JSON serialisation round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GreedySolver
from repro.core.objectives import evaluate_assignment
from repro.core.validity import ValidityRule
from repro.datagen import ExperimentConfig, generate_problem
from repro.io import (
    assignment_from_dict,
    assignment_to_dict,
    load_assignment,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_assignment,
    save_problem,
)
from repro.core.assignment import Assignment


def sample_problem(seed=3, waiting=False):
    config = ExperimentConfig.scaled_defaults(num_tasks=8, num_workers=14)
    return generate_problem(config, seed, ValidityRule(allow_waiting=waiting))


class TestProblemRoundTrip:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_dict_round_trip(self, seed):
        original = sample_problem(seed)
        restored = problem_from_dict(problem_to_dict(original))
        assert restored.num_tasks == original.num_tasks
        assert restored.num_workers == original.num_workers
        assert restored.num_pairs == original.num_pairs
        for pair in original.valid_pairs():
            assert restored.arrival(pair.task_id, pair.worker_id) == pytest.approx(
                pair.arrival
            )
        assert restored.tasks == original.tasks
        assert restored.workers == original.workers

    def test_validity_rule_preserved(self):
        original = sample_problem(5, waiting=True)
        restored = problem_from_dict(problem_to_dict(original))
        assert restored.validity.allow_waiting is True

    def test_solver_agrees_on_restored_problem(self):
        original = sample_problem(7)
        restored = problem_from_dict(problem_to_dict(original))
        a = GreedySolver().solve(original, rng=1)
        b = GreedySolver().solve(restored, rng=1)
        assert a.objective.total_std == pytest.approx(b.objective.total_std)

    def test_file_round_trip(self, tmp_path):
        original = sample_problem(9)
        path = tmp_path / "instance.json"
        save_problem(original, path)
        restored = load_problem(path)
        assert restored.num_pairs == original.num_pairs
        # The file must be plain JSON with a version stamp.
        document = json.loads(path.read_text())
        assert document["format_version"] == 1

    def test_version_check(self):
        document = problem_to_dict(sample_problem(1))
        document["format_version"] = 99
        with pytest.raises(ValueError):
            problem_from_dict(document)


class TestAssignmentRoundTrip:
    def test_dict_round_trip(self):
        original = Assignment.from_pairs([(1, 10), (1, 11), (2, 20)])
        restored = assignment_from_dict(assignment_to_dict(original))
        assert restored == original

    def test_empty_assignment(self):
        restored = assignment_from_dict(assignment_to_dict(Assignment()))
        assert len(restored) == 0

    def test_file_round_trip(self, tmp_path):
        problem = sample_problem(11)
        assignment = GreedySolver().solve(problem, rng=2).assignment
        path = tmp_path / "assignment.json"
        save_assignment(assignment, path)
        restored = load_assignment(path)
        assert restored == assignment
        # The restored assignment still evaluates identically.
        assert evaluate_assignment(problem, restored).total_std == pytest.approx(
            evaluate_assignment(problem, assignment).total_std
        )

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 50)),
            max_size=30,
            unique_by=lambda pair: pair[1],
        )
    )
    def test_property_round_trip(self, pairs):
        original = Assignment.from_pairs(pairs)
        assert assignment_from_dict(assignment_to_dict(original)) == original
