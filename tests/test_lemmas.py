"""Paper lemmas, verified: one property test per formal claim.

The paper's appendix proves seven lemmas; this module pins each one to an
executable check so the reproduction's fidelity is not just structural but
semantic.  (Lemma 3.2, NP-hardness, is exercised end-to-end by
``tests/test_nphard.py`` — the reduction's optimum solves number
partitioning.)
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.pruning import CandidateBounds, prune_candidates
from repro.core.diversity import WorkerProfile
from repro.core.expected import expected_std
from repro.core.possible_worlds import exact_expected_std
from repro.core.reliability import log_reliability
from repro.skyline.dominance import dominates_tuple
from tests.conftest import make_task

probs = st.floats(min_value=0.0, max_value=1.0)
angles = st.floats(min_value=0.0, max_value=6.283)
times = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def profile_lists(draw, min_size=0, max_size=6):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return [
        WorkerProfile(i, draw(angles), draw(times), draw(probs)) for i in range(n)
    ]


@st.composite
def single_profile(draw, worker_id=99):
    return WorkerProfile(worker_id, draw(angles), draw(times), draw(probs))


class TestLemma31ExpectedDiversityReduction:
    """E[STD] by the diversity matrices equals the possible-world sum."""

    @settings(max_examples=80, deadline=None)
    @given(profile_lists(), st.floats(min_value=0.0, max_value=1.0))
    def test_matrix_equals_enumeration(self, profiles, beta):
        task = make_task(start=0.0, end=10.0, beta=beta)
        assert expected_std(task, profiles) == pytest.approx(
            exact_expected_std(task, profiles), abs=1e-10
        )


class TestLemma41ReliabilityAdditivity:
    """R(t, W + w) = R(t, W) - ln(1 - p_w); R never decreases."""

    @settings(max_examples=60)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.999), max_size=8),
        st.floats(min_value=0.0, max_value=0.999),
    )
    def test_additivity(self, ps, extra):
        base = log_reliability(ps)
        combined = log_reliability([*ps, extra])
        assert combined == pytest.approx(base - math.log(1.0 - extra), abs=1e-9)
        assert combined >= base - 1e-12


class TestLemma42DiversityMonotonicity:
    """Adding a worker never decreases the expected diversity."""

    @settings(max_examples=80, deadline=None)
    @given(
        profile_lists(),
        single_profile(),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone(self, profiles, new_profile, beta):
        task = make_task(start=0.0, end=10.0, beta=beta)
        before = expected_std(task, profiles)
        after = expected_std(task, [*profiles, new_profile])
        assert after >= before - 1e-9


class TestLemma43PruningSafety:
    """Pruned pairs are never on the true (dr, dd) skyline.

    Given valid bounds lb <= dd <= ub, any pair pruned by Lemma 4.3 is
    strictly dominated (in true values) by the pair that pruned it, so the
    best pair always survives.
    """

    @settings(max_examples=80)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-3, max_value=3),   # delta_min_r
                st.floats(min_value=0.0, max_value=1.0),  # bound anchor a
                st.floats(min_value=0.0, max_value=1.0),  # bound anchor b
                st.floats(min_value=0.0, max_value=1.0),  # true dd position
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_pruned_never_on_true_skyline(self, raw):
        candidates = []
        true_dd = {}
        for i, (dr, a, b, pos) in enumerate(raw):
            lb, ub = min(a, b), max(a, b)
            candidates.append(CandidateBounds(i, i, dr, lb, ub))
            true_dd[i] = lb + pos * (ub - lb)  # any value inside the bounds
        survivors = {c.task_id for c in prune_candidates(candidates)}
        scores = [(c.delta_min_r, true_dd[c.task_id]) for c in candidates]
        for i, candidate in enumerate(candidates):
            if candidate.task_id in survivors:
                continue
            # Pruned: some other candidate strictly dominates it in truth.
            assert any(
                dominates_tuple(scores[j], scores[i])
                for j in range(len(candidates))
                if j != i
            )


class TestLemma61NonConflictStability:
    """Removing one worker never *shrinks* another's diversity increment.

    The Appendix G claim behind SA_Merge.  It holds for **temporal**
    diversity (entropy of a refined interval partition is submodular in
    the inserted boundaries — proved via ``ln(s/(s-x)) > 0``), and we
    verify that below.  For **spatial** diversity the claim is *false at
    the boundary*: a lone photographer has zero SD, so w_k's marginal gain
    in the world where only w_j survives is positive *with* w_j but zero
    without — the paper's proof implicitly assumes a surviving companion
    ray.  We pin that counterexample as a regression test documenting the
    deviation (SA_Merge itself is unaffected: it re-scores merge options
    with exact expected values rather than relying on the lemma).
    """

    @settings(max_examples=60, deadline=None)
    @given(
        profile_lists(min_size=0, max_size=5),
        single_profile(worker_id=97),
        single_profile(worker_id=98),
    )
    def test_temporal_marginal_gain_grows_without_competitor(
        self, others, w_j, w_k
    ):
        task = make_task(start=0.0, end=10.0, beta=0.0)  # TD only
        with_j = [*others, w_j]
        gain_with_j = expected_std(task, [*with_j, w_k]) - expected_std(task, with_j)
        gain_without_j = expected_std(task, [*others, w_k]) - expected_std(
            task, others
        )
        assert gain_without_j >= gain_with_j - 1e-9

    def test_spatial_counterexample_documented(self):
        # One unreliable bystander: the empty possible world dominates, so
        # w_k alone contributes no SD — but with w_j present the pair does.
        task = make_task(start=0.0, end=10.0, beta=1.0)  # SD only
        others = [WorkerProfile(0, 0.0, 5.0, 0.05)]
        w_j = WorkerProfile(97, 2.0, 5.0, 0.9)
        w_k = WorkerProfile(98, 4.0, 5.0, 0.9)
        with_j = [*others, w_j]
        gain_with_j = expected_std(task, [*with_j, w_k]) - expected_std(task, with_j)
        gain_without_j = expected_std(task, [*others, w_k]) - expected_std(
            task, others
        )
        # The paper's inequality would demand the opposite.
        assert gain_with_j > gain_without_j
        # Sanity: the expectation machinery agrees with exact enumeration
        # on the counterexample, so this is the lemma failing, not us.
        assert expected_std(task, [*with_j, w_k]) == pytest.approx(
            exact_expected_std(task, [*with_j, w_k]), abs=1e-10
        )


class TestLemma62ConflictGroupMinimality:
    """Workers in different conflict groups share no assigned task."""

    def test_groups_are_task_disjoint(self):
        from repro.algorithms.merge import conflict_groups
        from repro.core.assignment import Assignment

        a1 = Assignment.from_pairs([(0, 1), (0, 2), (1, 3), (2, 4)])
        a2 = Assignment.from_pairs([(3, 1), (4, 2), (4, 3), (5, 4)])
        groups = conflict_groups(a1, a2, [1, 2, 3, 4])
        # Tasks touched by each group, in either solution.
        touched = []
        for group in groups:
            tasks = set()
            for worker_id in group:
                tasks.add(a1.task_of(worker_id))
                tasks.add(a2.task_of(worker_id))
            touched.append(tasks)
        for i in range(len(touched)):
            for j in range(i + 1, len(touched)):
                assert touched[i].isdisjoint(touched[j])
