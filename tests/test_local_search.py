"""Tests for the Pareto local-search refinement."""

import pytest

from repro.algorithms import GreedySolver, RandomSolver, SamplingSolver
from repro.algorithms.local_search import LocalSearchSolver, improve_assignment
from repro.core.objectives import dominates, evaluate_assignment
from repro.datagen import ExperimentConfig, generate_problem


def dense_problem(seed=3, m=12, n=24):
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n), seed
    )


class TestImproveAssignment:
    def test_never_dominated_by_start(self):
        for seed in (1, 2, 3, 4):
            problem = dense_problem(seed)
            start = RandomSolver().solve(problem, rng=seed).assignment
            start_value = evaluate_assignment(problem, start)
            improved, value, _ = improve_assignment(problem, start, rng=seed)
            assert not dominates(start_value, value)

    def test_keeps_feasibility(self):
        problem = dense_problem(5)
        start = RandomSolver().solve(problem, rng=5).assignment
        improved, _, _ = improve_assignment(problem, start, rng=5)
        assert len(improved) == len(start)
        for task_id, worker_id in improved.pairs():
            assert problem.is_valid_pair(task_id, worker_id)

    def test_does_not_mutate_input(self):
        problem = dense_problem(7)
        start = RandomSolver().solve(problem, rng=7).assignment
        snapshot = sorted(start.pairs())
        improve_assignment(problem, start, rng=7)
        assert sorted(start.pairs()) == snapshot

    def test_zero_rounds_is_identity(self):
        problem = dense_problem(9)
        start = RandomSolver().solve(problem, rng=9).assignment
        improved, value, moves = improve_assignment(problem, start, max_rounds=0)
        assert moves == 0
        assert sorted(improved.pairs()) == sorted(start.pairs())

    def test_negative_rounds_rejected(self):
        problem = dense_problem(9)
        start = RandomSolver().solve(problem, rng=9).assignment
        with pytest.raises(ValueError):
            improve_assignment(problem, start, max_rounds=-1)

    def test_improves_random_start_usually(self):
        improved_count = 0
        for seed in (1, 2, 3, 4, 5):
            problem = dense_problem(seed)
            start = RandomSolver().solve(problem, rng=seed).assignment
            _, _, moves = improve_assignment(problem, start, rng=seed)
            improved_count += moves > 0
        assert improved_count >= 3


class TestLocalSearchSolver:
    def test_name_reflects_base(self):
        assert LocalSearchSolver(GreedySolver()).name == "GREEDY+LS"
        assert LocalSearchSolver(SamplingSolver(num_samples=5)).name == "SAMPLING+LS"

    def test_not_dominated_by_base(self):
        problem = dense_problem(11)
        base = GreedySolver().solve(problem, rng=2)
        wrapped = LocalSearchSolver(GreedySolver()).solve(problem, rng=2)
        assert not dominates(base.objective, wrapped.objective)

    def test_stats_carry_moves(self):
        problem = dense_problem(13)
        result = LocalSearchSolver(RandomSolver()).solve(problem, rng=1)
        assert "local_moves" in result.stats

    def test_objective_self_consistent(self):
        problem = dense_problem(15)
        result = LocalSearchSolver(RandomSolver()).solve(problem, rng=3)
        fresh = evaluate_assignment(problem, result.assignment)
        assert result.objective.total_std == pytest.approx(fresh.total_std)
        assert result.objective.min_reliability == pytest.approx(
            fresh.min_reliability
        )
