"""Tests for the Lemma 3.2 reduction and partition solvers."""

import itertools
import math

import pytest

from repro.core.assignment import Assignment
from repro.core.objectives import evaluate_assignment
from repro.core.reliability import min_reliability
from repro.nphard import (
    build_rdbsc_instance,
    discrepancy,
    greedy_partition,
    partition_from_assignment,
    solve_partition_exact,
)


class TestPartitionSolvers:
    def test_exact_perfect_partition(self):
        d, subset = solve_partition_exact([1, 2, 3])  # {1,2} vs {3}
        assert d == 0

    def test_exact_odd_total(self):
        d, _ = solve_partition_exact([1, 1, 1])
        assert d == 1

    def test_exact_single_item(self):
        d, subset = solve_partition_exact([7])
        assert d == 7
        assert subset == []

    def test_exact_refuses_large(self):
        with pytest.raises(ValueError):
            solve_partition_exact(list(range(1, 30)))

    def test_exact_empty_rejected(self):
        with pytest.raises(ValueError):
            solve_partition_exact([])

    def test_greedy_reasonable(self):
        values = [8, 7, 6, 5, 4]
        d_greedy, subset = greedy_partition(values)
        d_exact, _ = solve_partition_exact(values)
        assert d_greedy >= d_exact
        assert d_greedy == discrepancy(values, subset)

    def test_discrepancy(self):
        assert discrepancy([5, 3, 2], [0]) == 0  # 5 vs 3+2


class TestReduction:
    def test_instance_shape(self):
        values = [3, 5, 8]
        problem = build_rdbsc_instance(values)
        assert problem.num_tasks == 2
        assert problem.num_workers == 3
        # Everyone can reach both tasks.
        for worker in problem.workers:
            assert problem.degree(worker.worker_id) == 2

    def test_confidence_mapping(self):
        values = [4, 8]
        problem = build_rdbsc_instance(values)
        # p_i = 1 - e^{-a_i / a_max}: log weight equals a_i / a_max.
        for i, value in enumerate(values):
            worker = problem.workers_by_id[i]
            assert worker.log_confidence_weight == pytest.approx(value / 8)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            build_rdbsc_instance([])
        with pytest.raises(ValueError):
            build_rdbsc_instance([3, 0])

    def test_std_identically_zero(self):
        # The gadget's collinear geometry + beta=1 kills diversity entirely,
        # leaving reliability as the only objective — the reduction's core.
        values = [2, 3, 4]
        problem = build_rdbsc_instance(values)
        for combo in itertools.product([0, 1], repeat=len(values)):
            assignment = Assignment()
            for i, side in enumerate(combo):
                assignment.assign(side, i)
            value = evaluate_assignment(problem, assignment)
            assert value.total_std == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize(
        "values",
        [[8, 7, 6, 5, 4], [1, 2, 3, 4], [10, 10, 1], [5, 5, 5, 5]],
    )
    def test_optimal_assignment_solves_partition(self, values):
        # The heart of Lemma 3.2: maximising the minimum reliability over
        # the gadget is exactly minimising the partition discrepancy.
        problem = build_rdbsc_instance(values)
        best_rel = -1.0
        best_assignment = None
        for combo in itertools.product([0, 1], repeat=len(values)):
            assignment = Assignment()
            for i, side in enumerate(combo):
                assignment.assign(side, i)
            rel = min_reliability(problem, assignment, include_empty=True)
            if rel > best_rel:
                best_rel = rel
                best_assignment = assignment
        left, _ = partition_from_assignment(values, best_assignment)
        exact_d, _ = solve_partition_exact(values)
        assert discrepancy(values, left) == exact_d
