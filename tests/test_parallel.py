"""The parallel solve subsystem's determinism and equivalence contracts.

What is pinned here:

* **Substream determinism (satellite of the subsystem's contract)** —
  under :data:`repro.algorithms.sampling.SUBSTREAM_V1` the solved plan is
  bit-identical at executor pool sizes 0 (inline chunks), 1, 2 and 4 and
  to the serial no-executor path, on both backends, with seed-identity
  *across* backends; the legacy shared-stream flag reproduces its own
  (different) plan and refuses to fan out.
* **Chunk-scorer equivalence** — :class:`SampleChunkScorer` produces the
  exact floats of :func:`repro.core.objectives.evaluate_assignment` for
  every drawn sample (the memo only skips recomputation).
* **Greedy shard-batched scoring** — plans bit-identical to the serial
  greedy for contiguous and shard-map partitions, inline and across
  processes, both backends, pruning on and off.
* **Engine/session wiring** — engines (plain, sharded, warm) with a
  ``solve_executor`` reproduce the serial engines' epochs on a churn
  stream; the differential classes carry the ``churn`` marker.

The golden fixture (``tests/fixtures/golden_small.json``) additionally
pins the substream contract's exact objectives next to the legacy flag's.
"""

import numpy as np
import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.algorithms.random_assign import draw_random_assignment
from repro.algorithms.sampling import (
    SHARED_STREAM_V0,
    SUBSTREAM_V1,
    substream_rng,
)
from repro.core.objectives import evaluate_assignment
from repro.datagen import ExperimentConfig, generate_problem
from repro.dynamic import CrowdsourcingSession
from repro.engine import (
    AssignmentEngine,
    ParallelSolveExecutor,
    ShardMap,
    ShardedAssignmentEngine,
)
from repro.engine.parallel import (
    PinnedWorkerPools,
    SampleChunkScorer,
    ShardBatchedScorer,
    chunk_ranges,
    pack_problem,
    unpack_problem,
)
from tests.conftest import make_task, make_worker


def problem_for(seed=3, m=12, n=36, backend="python"):
    """A mid-density instance for the differential checks."""
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=m, num_workers=n),
        seed,
        backend=backend,
    )


def plan_key(result):
    """Canonical (pairs, objective) view of a solver result."""
    return (sorted(result.assignment.pairs()), result.objective)


# --------------------------------------------------------------------- #
# Substream sampling determinism
# --------------------------------------------------------------------- #


class TestSubstreamContract:
    def test_substream_serial_is_deterministic(self):
        problem = problem_for()
        solver = SamplingSolver(num_samples=24)
        assert solver.rng_contract == SUBSTREAM_V1
        assert plan_key(solver.solve(problem, rng=5)) == plan_key(
            solver.solve(problem, rng=5)
        )

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_inline_executor_matches_serial(self, backend):
        problem = problem_for(backend=backend)
        reference = SamplingSolver(num_samples=24, backend=backend).solve(
            problem, rng=5
        )
        with ParallelSolveExecutor(processes=0) as executor:
            solver = SamplingSolver(num_samples=24, backend=backend)
            executor.bind(solver)
            assert plan_key(solver.solve(problem, rng=5)) == plan_key(reference)

    def test_backends_seed_identical(self):
        problem = problem_for()
        a = SamplingSolver(num_samples=24, backend="python").solve(problem, rng=9)
        b = SamplingSolver(num_samples=24, backend="numpy").solve(problem, rng=9)
        assert plan_key(a) == plan_key(b)

    def test_legacy_flag_differs_and_refuses_fanout(self):
        problem = problem_for()
        substream = SamplingSolver(num_samples=24).solve(problem, rng=5)
        legacy_solver = SamplingSolver(num_samples=24, rng_contract=SHARED_STREAM_V0)
        legacy = legacy_solver.solve(problem, rng=5)
        # Different contract, different draws (same instance, same seed).
        assert plan_key(legacy) != plan_key(substream)
        with ParallelSolveExecutor(processes=0) as executor:
            with pytest.raises(ValueError, match="substream"):
                executor.bind(legacy_solver)

    def test_unknown_contract_rejected(self):
        with pytest.raises(ValueError, match="rng_contract"):
            SamplingSolver(rng_contract="substream-v0")

    def test_sample_i_depends_only_on_base_and_index(self):
        problem = problem_for()
        base = 123456789
        short = [
            draw_random_assignment(problem, substream_rng(base, index))
            for index in range(3)
        ]
        long = [
            draw_random_assignment(problem, substream_rng(base, index))
            for index in range(8)
        ]
        for a, b in zip(short, long):
            assert sorted(a.pairs()) == sorted(b.pairs())

    def test_warm_fresh_draws_match_full_solve_prefix(self):
        """Substream keeps the warm/full sample-identity contract."""
        from repro.algorithms.base import make_rng

        problem = problem_for()
        solver = SamplingSolver(num_samples=16)
        full, _ = solver.draw_scored_samples(problem, make_rng(7), 16)
        prefix, _ = solver.draw_scored_samples(problem, make_rng(7), 4)
        for a, b in zip(prefix, full):
            assert sorted(a.pairs()) == sorted(b.pairs())


@pytest.mark.churn
class TestSampleFanOutPoolSizes:
    @pytest.mark.parametrize("processes", [1, 2, 4])
    def test_pool_sizes_identical_to_serial(self, processes):
        problem = problem_for(seed=11)
        reference = SamplingSolver(num_samples=32).solve(problem, rng=3)
        with ParallelSolveExecutor(
            processes=processes, min_samples_per_process=4
        ) as executor:
            solver = SamplingSolver(num_samples=32)
            executor.bind(solver)
            assert plan_key(solver.solve(problem, rng=3)) == plan_key(reference)

    def test_numpy_backend_fans_out_identically(self):
        problem = problem_for(seed=13, backend="numpy")
        reference = SamplingSolver(num_samples=32, backend="numpy").solve(
            problem, rng=3
        )
        with ParallelSolveExecutor(
            processes=2, min_samples_per_process=4
        ) as executor:
            solver = SamplingSolver(num_samples=32, backend="numpy")
            executor.bind(solver)
            assert plan_key(solver.solve(problem, rng=3)) == plan_key(reference)
            assert executor.samples.stats["samples_remote"] == 32


# --------------------------------------------------------------------- #
# Chunk scorer
# --------------------------------------------------------------------- #


class TestSampleChunkScorer:
    def test_scores_equal_evaluate_assignment(self):
        problem = problem_for(seed=7)
        scorer = SampleChunkScorer(problem)
        base = 424242
        block = scorer.score_range(base, 0, 20)
        for index in range(20):
            assignment = draw_random_assignment(problem, substream_rng(base, index))
            value = evaluate_assignment(problem, assignment)
            assert block[index, 0] == value.min_reliability
            assert block[index, 1] == value.total_std
        # The memo genuinely engaged and changed nothing above.
        assert scorer.memo_hits > 0

    def test_empty_candidate_table(self):
        problem = problem_for(seed=7)
        empty = unpack_problem(pack_problem(problem))
        # A problem whose workers all have degree zero scores (0, 0).
        no_pairs = type(problem)(
            list(problem.tasks), list(problem.workers), problem.validity,
            precomputed_pairs=[],
        )
        scorer = SampleChunkScorer(no_pairs)
        block = scorer.score_range(1, 0, 3)
        assert np.array_equal(block, np.zeros((3, 2)))
        assert empty.num_pairs == problem.num_pairs  # unrelated sanity

    def test_problem_wire_roundtrip(self):
        problem = problem_for(seed=9)
        rebuilt = unpack_problem(pack_problem(problem))
        assert sorted(
            (p.task_id, p.worker_id, p.arrival) for p in rebuilt.valid_pairs()
        ) == sorted(
            (p.task_id, p.worker_id, p.arrival) for p in problem.valid_pairs()
        )
        for worker in problem.workers:
            assert rebuilt.candidate_tasks(worker.worker_id) == (
                problem.candidate_tasks(worker.worker_id)
            )
            rebuilt_worker = rebuilt.workers_by_id[worker.worker_id]
            assert rebuilt_worker.log_confidence_weight == (
                worker.log_confidence_weight
            )
        for task_id, worker_id in (
            (p.task_id, p.worker_id) for p in problem.valid_pairs()
        ):
            assert rebuilt.pair_profile(task_id, worker_id) == (
                problem.pair_profile(task_id, worker_id)
            )


# --------------------------------------------------------------------- #
# Shard-batched greedy scoring
# --------------------------------------------------------------------- #


class TestShardBatchedGreedy:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("use_pruning", [True, False])
    def test_inline_batches_identical(self, backend, use_pruning):
        problem = problem_for(seed=17, backend=backend)
        reference = GreedySolver(use_pruning=use_pruning, backend=backend).solve(
            problem, rng=1
        )
        with ParallelSolveExecutor(processes=0) as executor:
            solver = GreedySolver(use_pruning=use_pruning, backend=backend)
            executor.bind(solver)
            assert plan_key(solver.solve(problem, rng=1)) == plan_key(reference)

    def test_shard_map_partition_identical(self):
        problem = problem_for(seed=19)
        reference = GreedySolver().solve(problem, rng=1)
        with ParallelSolveExecutor(processes=0) as executor:
            solver = GreedySolver()
            executor.bind(solver, shard_map=ShardMap(4, 0.125))
            assert plan_key(solver.solve(problem, rng=1)) == plan_key(reference)
            scorer = solver.scorer
            assert isinstance(scorer, ShardBatchedScorer)
            assert scorer.stats["rounds"] > 0
            assert scorer.stats["batches"] >= scorer.stats["rounds"]

    @pytest.mark.churn
    def test_process_batches_identical(self):
        problem = problem_for(seed=23)
        reference = GreedySolver().solve(problem, rng=1)
        with ParallelSolveExecutor(
            processes=2, min_pairs_per_process=1
        ) as executor:
            solver = GreedySolver()
            executor.bind(solver, shard_map=ShardMap(2, 0.125))
            assert plan_key(solver.solve(problem, rng=1)) == plan_key(reference)
            assert solver.scorer.stats["batches_remote"] > 0


# --------------------------------------------------------------------- #
# Engine and session wiring
# --------------------------------------------------------------------- #


def mirror_engines(make_engine_pair, seed=29, steps=3, epoch_batches=4):
    """Drive serial and parallel engines through one churn stream."""
    from repro.geometry.points import Point

    from tests.conftest import make_pools

    tasks, workers = make_pools(seed, num_tasks=30, num_workers=60)
    serial, parallel = make_engine_pair()
    for engine in (serial, parallel):
        engine.add_tasks(tasks[:20])
        engine.add_workers(workers[:40])
    crng = np.random.default_rng(seed + 1)
    spare_tasks = tasks[20:]
    spare_workers = workers[40:]
    live = [w.worker_id for w in workers[:40]]
    for _ in range(epoch_batches):
        for _ in range(steps):
            roll = int(crng.integers(0, 3))
            if roll == 0 and spare_tasks:
                task = spare_tasks.pop()
                for engine in (serial, parallel):
                    engine.add_task(task)
            elif roll == 1 and spare_workers:
                worker = spare_workers.pop()
                live.append(worker.worker_id)
                for engine in (serial, parallel):
                    engine.add_worker(worker)
            else:
                worker_id = live[int(crng.integers(0, len(live)))]
                moved = serial.workers[worker_id].moved_to(
                    Point(float(crng.uniform()), float(crng.uniform())), 0.0
                )
                for engine in (serial, parallel):
                    engine.update_worker(moved)
        a = serial.epoch(0.0)
        b = parallel.epoch(0.0)
        assert sorted(a.assignment.pairs()) == sorted(b.assignment.pairs())
        assert a.objective == b.objective
        assert a.mode == b.mode
    return serial, parallel


@pytest.mark.churn
class TestEngineWiring:
    def test_engine_with_solve_executor_matches_serial(self):
        def build():
            return (
                AssignmentEngine(solver=SamplingSolver(num_samples=16), rng=2),
                AssignmentEngine(
                    solver=SamplingSolver(num_samples=16), rng=2, solve_executor=2
                ),
            )

        serial, parallel = mirror_engines(build)
        assert parallel.solve_executor is not None
        parallel.close()

    def test_sharded_engine_with_solve_executor(self):
        def build():
            return (
                AssignmentEngine(solver=GreedySolver(), rng=2),
                ShardedAssignmentEngine(
                    solver=GreedySolver(),
                    rng=2,
                    num_shards=4,
                    solve_executor=ParallelSolveExecutor(processes=0),
                ),
            )

        serial, parallel = mirror_engines(build)
        # The sharded engine's shard map drives the batch partition.
        scorer = parallel.solver.scorer
        assert isinstance(scorer, ShardBatchedScorer)
        assert scorer.shard_map is parallel.shard_map
        parallel.close()

    def test_warm_mode_with_solve_executor(self):
        def build():
            return (
                AssignmentEngine(
                    solver=SamplingSolver(num_samples=16), rng=2, solve_mode="warm"
                ),
                AssignmentEngine(
                    solver=SamplingSolver(num_samples=16),
                    rng=2,
                    solve_mode="warm",
                    solve_executor=ParallelSolveExecutor(processes=0),
                ),
            )

        serial, parallel = mirror_engines(build, steps=2)
        assert parallel.metrics.warm_solves > 0
        parallel.close()

    def test_solver_swap_unbinds_previous_solver(self):
        first = SamplingSolver(num_samples=8)
        engine = AssignmentEngine(solver=first, rng=1, solve_executor=2)
        engine.add_task(make_task(0))
        engine.add_worker(make_worker(0, x=0.5, y=0.4))
        engine.epoch(0.0)
        assert first.executor is not None
        engine.solver = GreedySolver()
        engine.epoch(0.0)
        # The swapped-out solver no longer points at the engine's pools.
        assert first.executor is None
        engine.close()

    def test_close_unbinds_owned_executor(self):
        solver = SamplingSolver(num_samples=8)
        engine = AssignmentEngine(solver=solver, rng=1, solve_executor=2)
        engine.add_task(make_task(0))
        engine.add_worker(make_worker(0, x=0.5, y=0.4))
        engine.epoch(0.0)
        assert solver.executor is not None
        engine.close()
        assert solver.executor is None
        # The solver keeps working serially after the engine is gone.
        problem = problem_for()
        solver.solve(problem, rng=1)

    def test_simulator_pass_through(self):
        from repro.platform_sim.simulator import PlatformConfig, PlatformSimulator

        config = PlatformConfig(n_workers=6, n_sites=3, sim_minutes=6.0)
        serial = PlatformSimulator(config).run(
            SamplingSolver(num_samples=10), rng=11
        )
        fanned = PlatformSimulator(config, solve_executor=2).run(
            SamplingSolver(num_samples=10), rng=11
        )
        assert serial.min_reliability == fanned.min_reliability
        assert serial.total_std == fanned.total_std
        assert serial.dispatches == fanned.dispatches

    def test_session_pass_through(self):
        tasks = [make_task(i, x=0.1 * (i + 1), y=0.5, end=20.0) for i in range(6)]
        workers = [
            make_worker(i, x=0.1 * (i + 1), y=0.45, velocity=0.2) for i in range(9)
        ]
        plain = CrowdsourcingSession(solver=SamplingSolver(num_samples=12), rng=4)
        fanned = CrowdsourcingSession(
            solver=SamplingSolver(num_samples=12), rng=4, solve_executor=2
        )
        for session in (plain, fanned):
            for task in tasks:
                session.add_task(task)
            for worker in workers:
                session.add_worker(worker)
        a = plain.reassign(0.0)
        b = fanned.reassign(0.0)
        assert sorted(a.assignment.pairs()) == sorted(b.assignment.pairs())
        assert a.objective == b.objective
        fanned.close()
        plain.close()


# --------------------------------------------------------------------- #
# Infrastructure pieces
# --------------------------------------------------------------------- #


class TestInfrastructure:
    def test_chunk_ranges(self):
        assert chunk_ranges(10, 4) == [(0, 2), (2, 5), (5, 7), (7, 10)]
        assert chunk_ranges(3, 4) == [(0, 1), (1, 2), (2, 3)]
        assert chunk_ranges(0, 4) == []
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)

    def test_pinned_pools_affinity(self):
        import os

        pools = PinnedWorkerPools(2)
        try:
            first = [pools.submit(0, os.getpid) for _ in range(2)]
            second = pools.submit(2, os.getpid)  # wraps to slot 0
            pids = {future.result() for future in first}
            assert len(pids) == 1
            assert second.result() in pids
        finally:
            pools.close()

    def test_pinned_pools_rejects_zero(self):
        with pytest.raises(ValueError):
            PinnedWorkerPools(0)

    def test_executor_rejects_negative_processes(self):
        with pytest.raises(ValueError):
            ParallelSolveExecutor(processes=-1)

    def test_closed_executor_refuses_pools(self):
        executor = ParallelSolveExecutor(processes=1)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.pools()
