"""Tests for the gMission-style platform simulator and its pieces."""

import math

import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.core.diversity import WorkerProfile
from repro.core.validity import ValidityRule
from repro.geometry.points import Point
from repro.platform_sim import (
    PlatformConfig,
    PlatformSimulator,
    answer_accuracy,
    answer_error,
    bootstrap_reliabilities,
    incremental_update,
)
from repro.platform_sim.accuracy import task_accuracy
from repro.platform_sim.events import WorkerRuntime, WorkerStatus
from repro.platform_sim.incremental import build_update_problem
from repro.platform_sim.ratings import rate_photo
from tests.conftest import make_task, make_worker


class TestRatings:
    def test_rate_photo_within_scale(self):
        score = rate_photo(7.0, n_raters=5, rng=0)
        assert 0.0 <= score <= 10.0

    def test_rate_photo_tracks_quality(self):
        lows = [rate_photo(2.0, 6, rng=i) for i in range(20)]
        highs = [rate_photo(9.0, 6, rng=i) for i in range(20)]
        assert sum(highs) / 20 > sum(lows) / 20

    def test_rate_photo_needs_rater(self):
        with pytest.raises(ValueError):
            rate_photo(5.0, 0)

    def test_bootstrap_reliabilities_range(self):
        ps = bootstrap_reliabilities(30, rng=1)
        assert len(ps) == 30
        assert all(0.5 <= p <= 1.0 for p in ps)

    def test_bootstrap_deterministic(self):
        assert bootstrap_reliabilities(10, rng=3) == bootstrap_reliabilities(10, rng=3)

    def test_bootstrap_negative_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_reliabilities(-1)


class TestAccuracy:
    def test_perfect_answer(self):
        assert answer_error(0.0, 0.0, beta=0.5, period=10.0) == 0.0
        assert answer_accuracy(0.0, 0.0, beta=0.5, period=10.0) == 1.0

    def test_worst_angle(self):
        assert answer_error(math.pi, 0.0, beta=1.0, period=10.0) == pytest.approx(1.0)

    def test_beta_blend(self):
        value = answer_error(math.pi / 2, 5.0, beta=0.4, period=10.0)
        assert value == pytest.approx(0.4 * 0.5 + 0.6 * 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            answer_error(4.0, 0.0, 0.5, 10.0)
        with pytest.raises(ValueError):
            answer_error(0.0, 11.0, 0.5, 10.0)
        with pytest.raises(ValueError):
            answer_error(0.0, 0.0, 1.5, 10.0)
        with pytest.raises(ValueError):
            answer_error(0.0, 0.0, 0.5, 0.0)

    def test_task_accuracy_mean(self):
        assert task_accuracy([0.8, 0.6]) == pytest.approx(0.7)
        with pytest.raises(ValueError):
            task_accuracy([])


class TestWorkerRuntime:
    def test_dispatch_and_complete(self):
        runtime = WorkerRuntime(make_worker(0, x=0.1, y=0.1))
        runtime.dispatch(task_id=3, arrival_time=2.0)
        assert runtime.status is WorkerStatus.TRAVELLING
        with pytest.raises(ValueError):
            runtime.dispatch(4, 3.0)
        runtime.complete_trip(Point(0.5, 0.5), now=2.5)
        assert runtime.status is WorkerStatus.AVAILABLE
        assert runtime.worker.location == Point(0.5, 0.5)
        assert runtime.worker.depart_time == 2.5

    def test_complete_without_trip_raises(self):
        runtime = WorkerRuntime(make_worker(0))
        with pytest.raises(ValueError):
            runtime.complete_trip(Point(0, 0), 0.0)


class TestIncrementalUpdate:
    def _setup(self):
        tasks = [
            make_task(0, x=0.45, y=0.5, start=0.0, end=10.0),
            make_task(1, x=0.55, y=0.5, start=0.0, end=10.0),
        ]
        workers = [
            make_worker(0, x=0.4, y=0.5, velocity=0.2, confidence=0.9),
            make_worker(1, x=0.6, y=0.5, velocity=0.2, confidence=0.8),
        ]
        return tasks, workers

    def test_dispatch_only_real_workers(self):
        tasks, workers = self._setup()
        committed = {0: [WorkerProfile(-99, 1.0, 2.0, 0.7)]}
        dispatch = incremental_update(
            tasks, workers, committed, GreedySolver(), 0.0, ValidityRule(), rng=1
        )
        assert all(worker_id >= 0 for worker_id in dispatch)
        assert set(dispatch) <= {0, 1}

    def test_empty_inputs(self):
        tasks, workers = self._setup()
        rule = ValidityRule()
        assert incremental_update([], workers, {}, GreedySolver(), 0.0, rule) == {}
        assert incremental_update(tasks, [], {}, GreedySolver(), 0.0, rule) == {}

    def test_virtual_workers_pinned_to_their_task(self):
        tasks, workers = self._setup()
        committed = {
            0: [WorkerProfile(-1, 0.5, 1.0, 0.9)],
            1: [WorkerProfile(-2, 2.0, 3.0, 0.8)],
        }
        problem = build_update_problem(tasks, workers, committed, 0.0, ValidityRule())
        virtual_ids = [w.worker_id for w in problem.workers if w.worker_id < 0]
        assert len(virtual_ids) == 2
        for vid in virtual_ids:
            assert problem.degree(vid) == 1

    def test_committed_profile_preserved(self):
        tasks, workers = self._setup()
        committed = {0: [WorkerProfile(-1, 1.25, 4.0, 0.65)]}
        problem = build_update_problem(tasks, workers, committed, 0.0, ValidityRule())
        vid = next(w.worker_id for w in problem.workers if w.worker_id < 0)
        profile = problem.pair_profile(0, vid)
        assert profile.arrival == pytest.approx(4.0)
        assert profile.angle == pytest.approx(1.25, abs=1e-6)
        assert profile.confidence == pytest.approx(0.65)

    def test_forbidden_pairs_excluded(self):
        tasks, workers = self._setup()
        problem = build_update_problem(
            tasks, workers, {}, 0.0, ValidityRule(), forbidden_pairs={(0, 0)}
        )
        assert 0 not in problem.candidate_tasks(0) or problem.degree(0) == 0


class TestPlatformConfig:
    def test_site_geometry(self):
        config = PlatformConfig(n_sites=5)
        sites = config.site_locations()
        assert len(sites) == 5
        centre = Point(0.5, 0.5)
        for site in sites:
            assert site.distance_to(centre) == pytest.approx(config.site_radius)

    def test_worker_speed_two_minute_walk(self):
        config = PlatformConfig()
        edge = 2.0 * config.site_radius * math.sin(math.pi / config.n_sites)
        assert config.worker_speed() == pytest.approx(edge / 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformConfig(n_workers=0)
        with pytest.raises(ValueError):
            PlatformConfig(t_interval=0.0)
        with pytest.raises(ValueError):
            PlatformConfig(task_open_minutes=0.0)


class TestSimulatorRuns:
    def test_run_produces_activity(self):
        simulator = PlatformSimulator(PlatformConfig(sim_minutes=20, t_interval=2.0))
        result = simulator.run(SamplingSolver(num_samples=15), rng=3)
        assert result.tasks_spawned > 0
        assert result.dispatches > 0
        assert result.tasks_dispatched > 0
        assert result.total_std > 0.0
        assert 0.0 < result.min_reliability <= 1.0

    def test_deterministic_given_seed(self):
        simulator = PlatformSimulator(PlatformConfig(sim_minutes=15, t_interval=2.0))
        a = simulator.run(SamplingSolver(num_samples=10), rng=7)
        b = simulator.run(SamplingSolver(num_samples=10), rng=7)
        assert a.total_std == pytest.approx(b.total_std)
        assert a.dispatches == b.dispatches

    def test_success_rate_reflects_confidences(self):
        simulator = PlatformSimulator(PlatformConfig(sim_minutes=25, t_interval=1.0))
        result = simulator.run(SamplingSolver(num_samples=10), rng=5)
        # Bootstrapped reliabilities live in [0.5, 1]; the realised success
        # rate should land in a sane band around them.
        assert 0.3 <= result.success_rate <= 1.0

    def test_no_worker_answers_same_task_twice(self):
        simulator = PlatformSimulator(PlatformConfig(sim_minutes=25, t_interval=1.0))
        result = simulator.run(SamplingSolver(num_samples=10), rng=9)
        seen = set()
        for answer in result.answers:
            key = (answer.worker_id, answer.task_id)
            assert key not in seen
            seen.add(key)


class TestWarmModeDispatchChurn:
    """Dispatch holds workers in place, so warm mode genuinely engages.

    Before the hold/release dispatch path, every dispatch removed its
    worker and every trip completion re-added one, so warm-mode
    deployments fell back to full solves almost every epoch (the old
    ROADMAP item).  Now a dispatched worker is held (plan fulfilment, not
    churn), released with one in-place update — warm repair must carry
    most epochs at the default threshold, without costing quality.
    """

    def _run(self, mode):
        simulator = PlatformSimulator(
            PlatformConfig(sim_minutes=40.0), solve_mode=mode
        )
        return simulator.run(GreedySolver(), rng=11)

    def test_warm_mode_carries_most_epochs(self):
        result = self._run("warm")
        metrics = result.engine_metrics
        assert metrics.warm_solves > metrics.full_solves
        assert metrics.events["worker_hold"] == result.dispatches
        assert metrics.events["worker_release"] == len(result.answers)

    def test_warm_quality_matches_full_on_the_same_seed(self):
        full = self._run("full")
        warm = self._run("warm")
        assert full.engine_metrics.warm_solves == 0
        assert warm.dispatches == pytest.approx(full.dispatches, abs=0.1 * full.dispatches)
        assert warm.min_reliability == pytest.approx(full.min_reliability, abs=0.05)
        assert warm.total_std == pytest.approx(full.total_std, rel=0.15)

    def test_dispatched_worker_stays_registered_while_held(self):
        simulator = PlatformSimulator(PlatformConfig(sim_minutes=6.0))
        config = simulator.config
        result = simulator.run(GreedySolver(), rng=3)
        # Every dispatch kept the worker count constant: nobody was
        # removed, so the engine ends with the full workforce registered.
        assert result.engine_metrics.events.get("worker_leave", 0) == 0
        assert result.engine_metrics.events["worker_arrive"] == config.n_workers
