"""Hypothesis property tests: the grid index is exactly brute force.

The index's whole contract is *lossless* acceleration — for any instance
and any cell size, index-assisted retrieval must return exactly the valid
pairs the O(m*n) scan finds, before and after arbitrary churn.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index

coords = st.floats(min_value=0.0, max_value=1.0)
angles = st.floats(min_value=0.0, max_value=2 * math.pi)


@st.composite
def task_lists(draw, max_tasks=10):
    n = draw(st.integers(min_value=0, max_value=max_tasks))
    tasks = []
    for i in range(n):
        start = draw(st.floats(min_value=0.0, max_value=5.0))
        tasks.append(
            SpatialTask(
                task_id=i,
                location=Point(draw(coords), draw(coords)),
                start=start,
                end=start + draw(st.floats(min_value=0.0, max_value=3.0)),
                beta=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    return tasks


@st.composite
def worker_lists(draw, max_workers=10):
    n = draw(st.integers(min_value=0, max_value=max_workers))
    workers = []
    for j in range(n):
        workers.append(
            MovingWorker(
                worker_id=j,
                location=Point(draw(coords), draw(coords)),
                velocity=draw(st.floats(min_value=0.0, max_value=1.0)),
                cone=AngleInterval(
                    draw(angles), draw(st.floats(min_value=0.0, max_value=2 * math.pi))
                ),
                confidence=draw(st.floats(min_value=0.0, max_value=1.0)),
                depart_time=draw(st.floats(min_value=0.0, max_value=2.0)),
            )
        )
    return workers


def pair_set(pairs):
    return sorted((p.task_id, p.worker_id) for p in pairs)


class TestIndexEqualsBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(task_lists(), worker_lists(), st.sampled_from([0.07, 0.19, 0.5, 1.0]))
    def test_bulk_load_retrieval(self, tasks, workers, eta):
        grid = RdbscGrid.bulk_load(tasks, workers, eta)
        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(tasks, workers)
        )

    @settings(max_examples=25, deadline=None)
    @given(task_lists(), worker_lists(), st.data())
    def test_retrieval_after_churn(self, tasks, workers, data):
        grid = RdbscGrid.bulk_load(tasks, workers, 0.23)
        grid.build_all_tcell_lists()

        surviving_tasks = list(tasks)
        surviving_workers = list(workers)
        # Remove a random prefix of tasks and workers, then re-add half.
        n_task_removals = data.draw(
            st.integers(min_value=0, max_value=len(tasks)), label="task removals"
        )
        n_worker_removals = data.draw(
            st.integers(min_value=0, max_value=len(workers)), label="worker removals"
        )
        removed_tasks = tasks[:n_task_removals]
        removed_workers = workers[:n_worker_removals]
        for task in removed_tasks:
            grid.remove_task(task.task_id)
            surviving_tasks.remove(task)
        for worker in removed_workers:
            grid.remove_worker(worker.worker_id)
            surviving_workers.remove(worker)
        for task in removed_tasks[::2]:
            grid.insert_task(task)
            surviving_tasks.append(task)
        for worker in removed_workers[::2]:
            grid.insert_worker(worker)
            surviving_workers.append(worker)

        assert pair_set(grid.valid_pairs()) == pair_set(
            retrieve_pairs_without_index(surviving_tasks, surviving_workers)
        )
