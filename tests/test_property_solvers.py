"""Hypothesis property tests on solver-level invariants.

Every solver, on every instance, must produce a *feasible* assignment
(valid pairs only, one task per worker, every connected worker placed) with
a self-consistent objective, and the merge/partition machinery must
conserve workers.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    MaxTaskSolver,
    RandomSolver,
    SamplingSolver,
)
from repro.algorithms.merge import sa_merge
from repro.algorithms.partition import bg_partition
from repro.core.assignment import Assignment
from repro.core.objectives import evaluate_assignment
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point

coords = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def problems(draw, max_tasks=6, max_workers=10):
    n_tasks = draw(st.integers(min_value=1, max_value=max_tasks))
    n_workers = draw(st.integers(min_value=1, max_value=max_workers))
    tasks = []
    for i in range(n_tasks):
        start = draw(st.floats(min_value=0.0, max_value=2.0))
        tasks.append(
            SpatialTask(
                i,
                Point(draw(coords), draw(coords)),
                start,
                start + draw(st.floats(min_value=0.5, max_value=3.0)),
                beta=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    workers = []
    for j in range(n_workers):
        workers.append(
            MovingWorker(
                j,
                Point(draw(coords), draw(coords)),
                velocity=draw(st.floats(min_value=0.1, max_value=1.0)),
                cone=AngleInterval(
                    draw(st.floats(min_value=0.0, max_value=6.28)),
                    draw(st.floats(min_value=0.5, max_value=6.29)),
                ),
                confidence=draw(st.floats(min_value=0.05, max_value=0.99)),
            )
        )
    return RdbscProblem(tasks, workers)


def assert_feasible(problem, assignment):
    seen = set()
    for task_id, worker_id in assignment.pairs():
        assert problem.is_valid_pair(task_id, worker_id)
        assert worker_id not in seen
        seen.add(worker_id)
    connected = {
        w.worker_id for w in problem.workers if problem.degree(w.worker_id) > 0
    }
    assert seen == connected


class TestSolverFeasibility:
    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_greedy(self, problem):
        result = GreedySolver().solve(problem, rng=0)
        assert_feasible(problem, result.assignment)
        fresh = evaluate_assignment(problem, result.assignment)
        assert result.objective.total_std == pytest.approx(fresh.total_std)

    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_sampling(self, problem):
        result = SamplingSolver(num_samples=8).solve(problem, rng=0)
        assert_feasible(problem, result.assignment)

    @settings(max_examples=15, deadline=None)
    @given(problems())
    def test_divide_conquer(self, problem):
        solver = DivideConquerSolver(gamma=3, base_solver=SamplingSolver(num_samples=6))
        result = solver.solve(problem, rng=0)
        assert_feasible(problem, result.assignment)

    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_max_task(self, problem):
        result = MaxTaskSolver().solve(problem, rng=0)
        assert_feasible(problem, result.assignment)

    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_random(self, problem):
        result = RandomSolver().solve(problem, rng=0)
        assert_feasible(problem, result.assignment)


class TestPartitionMergeConservation:
    @settings(max_examples=20, deadline=None)
    @given(problems(max_tasks=6, max_workers=12))
    def test_partition_covers_connected_workers(self, problem):
        if problem.num_tasks < 2:
            return
        part = bg_partition(problem, rng=0)
        connected = {
            w.worker_id for w in problem.workers if problem.degree(w.worker_id) > 0
        }
        assert set(part.worker_ids_1) | set(part.worker_ids_2) == connected
        assert set(part.conflicting_worker_ids) == (
            set(part.worker_ids_1) & set(part.worker_ids_2)
        )

    @settings(max_examples=20, deadline=None)
    @given(problems(max_tasks=6, max_workers=12), st.integers(min_value=1, max_value=8))
    def test_merge_keeps_each_worker_once(self, problem, max_group):
        if problem.num_tasks < 2:
            return
        part = bg_partition(problem, rng=0)
        sub1 = problem.restricted_to(part.task_ids_1, part.worker_ids_1)
        sub2 = problem.restricted_to(part.task_ids_2, part.worker_ids_2)
        a1 = SamplingSolver(num_samples=4).solve(sub1, rng=1).assignment
        a2 = SamplingSolver(num_samples=4).solve(sub2, rng=2).assignment
        merged, stats = sa_merge(
            problem, a1, a2, part.conflicting_worker_ids, max_group
        )
        assert_feasible(problem, merged)
        assert stats.conflicts >= 0
