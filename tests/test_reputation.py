"""Tests for the Beta-Bernoulli reputation system (accuracy-control extension)."""

import numpy as np
import pytest

from repro.platform_sim import PlatformConfig, PlatformSimulator
from repro.platform_sim.reputation import BetaReputation, ReputationTracker
from repro.algorithms import SamplingSolver
from tests.conftest import make_worker


class TestBetaReputation:
    def test_uniform_prior_mean(self):
        assert BetaReputation().mean == pytest.approx(0.5)

    def test_from_prior_mean(self):
        rep = BetaReputation.from_prior_mean(0.8, strength=10.0)
        assert rep.mean == pytest.approx(0.8)
        assert rep.observations == pytest.approx(10.0)

    def test_prior_validation(self):
        with pytest.raises(ValueError):
            BetaReputation.from_prior_mean(0.0)
        with pytest.raises(ValueError):
            BetaReputation.from_prior_mean(0.5, strength=0.0)
        with pytest.raises(ValueError):
            BetaReputation(alpha=0.0)

    def test_success_raises_mean(self):
        rep = BetaReputation.from_prior_mean(0.5)
        before = rep.mean
        rep.observe(True)
        assert rep.mean > before

    def test_failure_lowers_mean(self):
        rep = BetaReputation.from_prior_mean(0.5)
        rep.observe(False)
        assert rep.mean < 0.5

    def test_converges_to_true_rate(self):
        rng = np.random.default_rng(0)
        rep = BetaReputation.from_prior_mean(0.5, strength=4.0)
        true_p = 0.85
        for _ in range(500):
            rep.observe(bool(rng.uniform() < true_p))
        assert rep.mean == pytest.approx(true_p, abs=0.05)


class TestReputationTracker:
    def test_seed_and_read(self):
        tracker = ReputationTracker()
        tracker.seed(3, 0.7)
        assert tracker.confidence(3) == pytest.approx(0.7)

    def test_unknown_worker_default(self):
        assert ReputationTracker().confidence(9, default=0.42) == 0.42

    def test_observe_auto_seeds(self):
        tracker = ReputationTracker()
        tracker.observe(5, True)
        assert tracker.confidence(5) > 0.5

    def test_extreme_confidences_clamped(self):
        tracker = ReputationTracker()
        tracker.seed(1, 1.0)
        tracker.seed(2, 0.0)
        assert 0.0 < tracker.confidence(2) < tracker.confidence(1) < 1.0

    def test_refreshed_worker(self):
        tracker = ReputationTracker(prior_strength=2.0)
        worker = make_worker(7, confidence=0.6)
        tracker.seed_workers([worker])
        for _ in range(20):
            tracker.observe(7, False)
        refreshed = tracker.refreshed_worker(worker)
        assert refreshed.confidence < 0.2
        assert refreshed.worker_id == worker.worker_id
        assert refreshed.location == worker.location

    def test_refreshed_worker_unseeded_keeps_confidence(self):
        tracker = ReputationTracker()
        worker = make_worker(8, confidence=0.77)
        assert tracker.refreshed_worker(worker).confidence == 0.77

    def test_invalid_strength(self):
        with pytest.raises(ValueError):
            ReputationTracker(prior_strength=0.0)

    def test_learning_separates_good_from_bad(self):
        rng = np.random.default_rng(1)
        tracker = ReputationTracker(prior_strength=4.0)
        tracker.seed(0, 0.75)  # actually unreliable
        tracker.seed(1, 0.75)  # actually excellent
        for _ in range(100):
            tracker.observe(0, bool(rng.uniform() < 0.4))
            tracker.observe(1, bool(rng.uniform() < 0.95))
        assert tracker.confidence(1) - tracker.confidence(0) > 0.3


class TestSimulatorIntegration:
    def test_learning_run_completes(self):
        config = PlatformConfig(sim_minutes=20, t_interval=2.0, learn_reputations=True)
        result = PlatformSimulator(config).run(SamplingSolver(num_samples=10), rng=4)
        assert result.dispatches > 0
        assert result.total_std > 0.0

    def test_learning_changes_behaviour_eventually(self):
        # Same seed, with and without learning: the runs should diverge in
        # at least one observable (planning confidences shift assignments).
        base = PlatformConfig(sim_minutes=30, t_interval=1.0)
        learn = PlatformConfig(sim_minutes=30, t_interval=1.0, learn_reputations=True)
        solver = SamplingSolver(num_samples=15)
        a = PlatformSimulator(base).run(solver, rng=6)
        b = PlatformSimulator(learn).run(solver, rng=6)
        differs = (
            a.total_std != pytest.approx(b.total_std)
            or a.dispatches != b.dispatches
            or a.min_reliability != pytest.approx(b.min_reliability)
        )
        assert differs
