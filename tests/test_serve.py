"""The service tier, end to end: protocol, batcher, differential, soak.

The load-bearing guarantees under test:

* **Wire transparency** — the same churn trace driven through the TCP
  wire protocol (server-side batcher, thread-offloaded epochs) and
  directly through an :class:`~repro.engine.engine.AssignmentEngine`
  produces bit-identical per-epoch plans *and* bit-identical
  replay-deterministic engine counters, on both backends and at 1 and 4
  shards.
* **Fold soundness** — the batcher's supersede-fold load shed never
  changes the final plan or engine state, proven by property over random
  event interleavings (hypothesis), and the fold never reorders
  non-update events.
* **Restart semantics** — a server SIGKILLed mid-session with
  ``durable_path=`` set resumes via ``python -m repro.serve --resume``
  and the remaining epochs are bit-identical to an uninterrupted run.
* **Soak invariants** — a short open-loop run loses zero events and
  records its latency percentiles (``pytest -m benchsmoke``).
"""

import asyncio
import os
import signal
import subprocess
import sys
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import GreedySolver
from repro.engine import events as ev
from repro.engine.engine import AssignmentEngine
from repro.engine.scheduler import EventQueue
from repro.engine.sharding import ShardedAssignmentEngine
from repro.geometry.points import Point
from repro.serve import protocol as proto
from repro.serve.batcher import IngestBatcher, ServeMetrics, fold_trace
from repro.serve.client import ServeClient, ServeError
from repro.serve.loadgen import LoadGenerator, percentile
from repro.serve.scheduler import DeadlineLoop, EngineDriver
from repro.serve.server import AssignmentServer
from tests.conftest import ScriptedChurn, make_task, make_worker

ETA = 0.125


# ---------------------------------------------------------------------- #
# Trace construction (shared by the differential and restart tests)
# ---------------------------------------------------------------------- #


def make_population(num_tasks=8, num_workers=16, seed=7):
    """The same distribution ``seed_population`` loads, as entity lists."""
    rng = np.random.default_rng(seed)
    tasks = [
        make_task(
            i,
            x=float(rng.uniform()),
            y=float(rng.uniform()),
            end=float(rng.uniform(30.0, 34.0)),
        )
        for i in range(num_tasks)
    ]
    workers = [
        make_worker(
            i,
            x=float(rng.uniform()),
            y=float(rng.uniform()),
            velocity=0.3,
            confidence=0.8,
        )
        for i in range(num_workers)
    ]
    return tasks, workers


class _TraceView(SimpleNamespace):
    """A registry mirror ``ScriptedChurn.events`` generates against."""

    def apply(self, events):
        """Track arrivals/updates so later steps see a consistent view."""
        for event in events:
            if isinstance(event, (ev.WorkerArrive, ev.WorkerUpdate)):
                self.workers[event.worker.worker_id] = event.worker
            elif isinstance(event, ev.TaskArrive):
                self.tasks[event.task.task_id] = event.task


def build_trace(num_steps, churn_seed=42, pop_seed=7):
    """One deterministic trace: population events plus per-step churn.

    Every in-place ``WorkerUpdate`` is preceded by a stale ping of the
    same worker (same position, re-anchored), so the batcher's supersede
    fold actually fires on the wire path — and ``fold_trace`` must shed
    the identical events on the direct path.
    """
    tasks, workers = make_population(seed=pop_seed)
    population = [ev.WorkerArrive(time=0.0, worker=w) for w in workers]
    population += [ev.TaskArrive(time=0.0, task=t) for t in tasks]
    view = _TraceView(
        workers={w.worker_id: w for w in workers},
        tasks={t.task_id: t for t in tasks},
    )
    churn = ScriptedChurn(churn_seed)
    steps = []
    for k in range(num_steps):
        events = []
        for event in churn.events(view, k):
            if isinstance(event, ev.WorkerUpdate):
                stale = view.workers[event.worker.worker_id]
                events.append(
                    ev.WorkerUpdate(
                        time=event.time,
                        worker=stale.moved_to(stale.location, float(k)),
                    )
                )
            events.append(event)
        view.apply(events)
        steps.append(events)
    return population, steps


def build_engine(backend="python", num_shards=1, seed=5):
    """A differential-twin engine (greedy: deterministic, backend-stable)."""
    if num_shards == 1:
        return AssignmentEngine(
            solver=GreedySolver(), eta=ETA, rng=seed, backend=backend
        )
    return ShardedAssignmentEngine(
        solver=GreedySolver(),
        eta=ETA,
        rng=seed,
        backend=backend,
        num_shards=num_shards,
    )


def run_direct(engine, population, steps):
    """The reference path: per-epoch folded batches through ``process``.

    Exactly the served engine's flush semantics: the events buffered
    since the previous epoch are folded (``fold_trace`` applies the
    batcher's shed policy), queued with the epoch tick, and processed in
    one call — so plans *and* counters must agree with the wire run bit
    for bit.
    """
    plans = []
    for now, batch in enumerate([list(population)] + list(steps)):
        queue = EventQueue(fold_trace(batch))
        queue.push(ev.EpochTick(time=float(now)))
        results = engine.process(queue)
        assert len(results) == 1
        plans.append((sorted(results[0].dispatch.items()), results[0].mode))
    return plans, engine.metrics.counters()


async def run_wire(engine, population, steps):
    """The same trace through a live server and the reference client."""
    async with AssignmentServer(engine) as server:
        async with ServeClient("127.0.0.1", server.bound_port) as client:
            plans = []

            async def send(event):
                if isinstance(event, (ev.WorkerArrive, ev.WorkerUpdate)):
                    await client.ping(event.time, event.worker)
                elif isinstance(event, ev.TaskArrive):
                    await client.submit_task(event.time, event.task)
                else:  # pragma: no cover - trace holds only these kinds
                    raise AssertionError(event)

            for event in population:
                await send(event)
            result = await client.epoch(0.0)
            plans.append(
                (
                    [tuple(p) for p in result["dispatch"]],
                    result["mode"],
                )
            )
            for k, events in enumerate(steps):
                for event in events:
                    await send(event)
                result = await client.epoch(float(k + 1))
                plans.append(
                    (
                        [tuple(p) for p in result["dispatch"]],
                        result["mode"],
                    )
                )
            stats = await client.stats()
    return plans, stats


# ---------------------------------------------------------------------- #
# Protocol codecs
# ---------------------------------------------------------------------- #


class TestProtocol:
    def test_every_request_round_trips(self):
        task = make_task(3, x=1 / 3, y=0.123456789012345, end=7.7)
        worker = make_worker(9, x=2 / 3, y=0.999999999999999, velocity=0.25)
        requests = [
            proto.SubmitTask(1, 0.5, task),
            proto.WithdrawTask(2, 1.5, 3),
            proto.WorkerPing(3, 2.5, worker),
            proto.WorkerLeave(4, 3.5, 9),
            proto.WorkerHold(5, 4.5, 9),
            proto.WorkerRelease(6, 5.5, 9),
            proto.Expire(7, 6.5),
            proto.Epoch(8, 7.5),
            proto.Subscribe(9),
            proto.Stats(10),
            proto.Shutdown(11),
        ]
        for request in requests:
            assert proto.decode_request(proto.encode_request(request)) == request

    def test_entity_floats_round_trip_bit_exactly(self):
        worker = make_worker(1, x=0.1 + 0.2, y=1e-17, velocity=1 / 7)
        decoded = proto.decode_request(
            proto.encode_request(proto.WorkerPing(1, 0.0, worker))
        )
        assert decoded.worker == worker  # dataclass equality is bit-exact

    @pytest.mark.parametrize(
        "line, code",
        [
            (b"not json\n", "json"),
            (b'{"v": 99, "id": 1, "op": "stats"}\n', "version"),
            (b'{"v": 1, "id": 1, "op": "nope"}\n', "op"),
            (b'{"v": 1, "op": "stats"}\n', "field"),
            (b'{"v": 1, "id": 1, "op": "epoch"}\n', "field"),
            (b'{"v": 1, "id": 1, "op": "epoch", "time": "soon"}\n', "field"),
            (b'{"v": 1, "id": 1, "op": "worker_ping", "time": 0, "worker": [1]}\n', "field"),
        ],
    )
    def test_malformed_frames_raise_with_code(self, line, code):
        with pytest.raises(proto.ProtocolError) as err:
            proto.decode_request(line)
        assert err.value.code == code


# ---------------------------------------------------------------------- #
# Batcher fold + admission units
# ---------------------------------------------------------------------- #


def _update(worker_id, t=0.0, x=0.5):
    return ev.WorkerUpdate(time=t, worker=make_worker(worker_id, x=x, y=0.5))


class TestBatcher:
    def test_supersede_fold_replaces_in_place(self):
        batcher = IngestBatcher(capacity=8)
        assert batcher.try_add(_update(1, x=0.1))
        assert batcher.try_add(_update(2, x=0.2))
        assert batcher.try_add(_update(1, x=0.9))  # supersedes the first
        assert len(batcher) == 2
        assert batcher.metrics.updates_shed == 1
        drained = batcher.drain()
        assert [e.worker.worker_id for e in drained] == [1, 2]
        assert drained[0].worker.location.x == 0.9  # the newer ping won

    def test_conflicting_worker_event_clears_the_slot(self):
        batcher = IngestBatcher(capacity=8)
        batcher.try_add(_update(1, x=0.1))
        batcher.try_add(ev.WorkerLeave(time=0.0, worker_id=1))
        batcher.try_add(_update(1, x=0.9))  # must NOT fold across the leave
        assert batcher.metrics.updates_shed == 0
        kinds = [type(e).__name__ for e in batcher.drain()]
        assert kinds == ["WorkerUpdate", "WorkerLeave", "WorkerUpdate"]

    def test_non_churn_event_is_a_global_barrier(self):
        batcher = IngestBatcher(capacity=8)
        batcher.try_add(_update(1, x=0.1))
        batcher.try_add(ev.ExpireTasks(time=1.0))
        batcher.try_add(_update(1, x=0.9))
        assert batcher.metrics.updates_shed == 0
        assert len(batcher) == 3

    def test_capacity_refuses_non_foldable_but_admits_folds(self):
        batcher = IngestBatcher(capacity=2)
        assert batcher.try_add(_update(1))
        assert batcher.try_add(_update(2))
        assert batcher.full
        assert not batcher.try_add(_update(3))  # new worker: refused
        assert batcher.try_add(_update(1, x=0.9))  # fold: always admitted
        assert batcher.metrics.updates_shed == 1
        assert len(batcher) == 2

    def test_drain_resets_fold_windows(self):
        batcher = IngestBatcher(capacity=8)
        batcher.try_add(_update(1, x=0.1))
        batcher.drain()
        batcher.try_add(_update(1, x=0.9))  # new window: no fold
        assert batcher.metrics.updates_shed == 0
        assert batcher.metrics.batches_flushed == 1

    def test_high_watermark_tracks_peak(self):
        batcher = IngestBatcher(capacity=8)
        for worker_id in range(5):
            batcher.try_add(_update(worker_id))
        batcher.drain()
        batcher.try_add(_update(0))
        assert batcher.metrics.queue_high_watermark == 5


# ---------------------------------------------------------------------- #
# Fold soundness by property (hypothesis)
# ---------------------------------------------------------------------- #

_OPS = ("new", "move", "move", "move", "leave", "task", "withdraw", "flush")


def _materialise(codes, seed):
    """Turn op codes into a valid typed event stream (plus final tick)."""
    rng = np.random.default_rng(seed)
    stream = []
    live = []
    tasks = []
    next_worker = 100
    next_task = 500
    now = 0.0
    for code in codes:
        op = _OPS[code]
        now += 0.25
        if op == "new":
            worker = make_worker(
                next_worker,
                x=float(rng.uniform()),
                y=float(rng.uniform()),
                velocity=0.3,
            )
            live.append(worker.worker_id)
            next_worker += 1
            stream.append(ev.WorkerArrive(time=now, worker=worker))
        elif op == "move" and live:
            worker_id = live[int(rng.integers(0, len(live)))]
            stream.append(
                ev.WorkerUpdate(
                    time=now,
                    worker=make_worker(
                        worker_id,
                        x=float(rng.uniform()),
                        y=float(rng.uniform()),
                        velocity=0.3,
                        depart_time=now,
                    ),
                )
            )
        elif op == "leave" and live:
            worker_id = live.pop(int(rng.integers(0, len(live))))
            stream.append(ev.WorkerLeave(time=now, worker_id=worker_id))
        elif op == "task":
            task = make_task(
                next_task,
                x=float(rng.uniform()),
                y=float(rng.uniform()),
                end=now + 20.0,
            )
            tasks.append(task.task_id)
            next_task += 1
            stream.append(ev.TaskArrive(time=now, task=task))
        elif op == "withdraw" and tasks:
            task_id = tasks.pop(int(rng.integers(0, len(tasks))))
            stream.append(ev.TaskWithdraw(time=now, task_id=task_id))
        elif op == "flush":
            stream.append(ev.EpochTick(time=now))
    stream.append(ev.EpochTick(time=now + 0.25))
    return stream


class TestFoldProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        codes=st.lists(st.integers(0, len(_OPS) - 1), min_size=5, max_size=40),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_fold_never_changes_plans_or_state(self, codes, seed):
        """Load-shed drops are invisible: folded == raw, end to end."""
        stream = _materialise(codes, seed)
        folded = fold_trace(stream, flush_before=ev.EpochTick)
        raw_engine = build_engine()
        fold_engine = build_engine()
        raw_results = raw_engine.process(EventQueue(list(stream)))
        fold_results = fold_engine.process(EventQueue(folded))
        assert [sorted(r.dispatch.items()) for r in raw_results] == [
            sorted(r.dispatch.items()) for r in fold_results
        ]
        assert raw_engine.workers == fold_engine.workers
        assert raw_engine.tasks == fold_engine.tasks

    @settings(max_examples=30, deadline=None)
    @given(
        codes=st.lists(st.integers(0, len(_OPS) - 1), min_size=5, max_size=40),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_fold_never_reorders_non_update_events(self, codes, seed):
        """Only superseded in-place updates may disappear; order holds."""
        stream = _materialise(codes, seed)
        folded = fold_trace(stream, flush_before=ev.EpochTick)
        strip = lambda events: [
            e for e in events if not isinstance(e, ev.WorkerUpdate)
        ]
        assert strip(folded) == strip(stream)
        assert len(folded) <= len(stream)


# ---------------------------------------------------------------------- #
# Wire-vs-direct differential (the tentpole's acceptance gate)
# ---------------------------------------------------------------------- #


@pytest.mark.churn
class TestWireDifferential:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_plans_and_counters_bit_identical(self, backend, num_shards):
        population, steps = build_trace(num_steps=6)
        direct_plans, direct_counters = run_direct(
            build_engine(backend, num_shards), population, steps
        )
        wire_plans, stats = asyncio.run(
            run_wire(build_engine(backend, num_shards), population, steps)
        )
        assert [
            ([tuple(p) for p in plan], mode) for plan, mode in direct_plans
        ] == wire_plans
        assert stats["engine"] == direct_counters
        # The trace's stale pings must actually have exercised the shed.
        assert stats["serve"]["updates_shed"] > 0

    def test_unfolded_direct_run_agrees_on_plans(self):
        """Shedding is invisible to decisions, not just to the twin."""
        population, steps = build_trace(num_steps=6)
        engine = build_engine()
        raw_plans = []
        for now, batch in enumerate([list(population)] + list(steps)):
            queue = EventQueue(batch)  # raw: nothing shed
            queue.push(ev.EpochTick(time=float(now)))
            result = engine.process(queue)[0]
            raw_plans.append((sorted(result.dispatch.items()), result.mode))
        folded_plans, _ = run_direct(build_engine(), population, steps)
        assert raw_plans == folded_plans


# ---------------------------------------------------------------------- #
# Server behaviour over the wire
# ---------------------------------------------------------------------- #


class TestServerWire:
    def test_registry_validation_and_errors(self):
        async def scenario():
            async with AssignmentServer(build_engine()) as server:
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    with pytest.raises(ServeError) as err:
                        await c.worker_leave(0.0, 404)
                    assert err.value.code == "invalid"
                    await c.ping(0.0, make_worker(1, x=0.2, y=0.2))
                    await c.submit_task(0.0, make_task(7, end=9.0))
                    with pytest.raises(ServeError) as err:
                        await c.submit_task(0.0, make_task(7, end=9.0))
                    assert err.value.code == "invalid"
                    stats = await c.stats()
                    assert stats["serve"]["rejected_invalid"] == 2
            return True

        assert asyncio.run(scenario())

    def test_protocol_error_answers_without_dropping_connection(self):
        async def scenario():
            async with AssignmentServer(build_engine()) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.bound_port
                )
                writer.write(b"garbage\n")
                await writer.drain()
                frame = proto.decode_frame(await reader.readline())
                assert frame["ok"] is False and frame["code"] == "json"
                # The connection survives: a valid request still works.
                writer.write(proto.encode_request(proto.Stats(1)))
                await writer.drain()
                frame = proto.decode_frame(await reader.readline())
                assert frame["ok"] and frame["serve"]["protocol_errors"] == 1
                writer.close()
                await writer.wait_closed()
            return True

        assert asyncio.run(scenario())

    def test_reject_admission_answers_overloaded(self):
        async def scenario():
            engine = build_engine()
            async with AssignmentServer(
                engine, capacity=2, admission="reject"
            ) as server:
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    # Register two workers and flush so later pings
                    # resolve to in-place WorkerUpdates (foldable).
                    await c.ping(0.0, make_worker(1, x=0.1, y=0.1))
                    await c.ping(0.0, make_worker(2, x=0.2, y=0.2))
                    await c.epoch(0.0)
                    # Fill the buffer with two pending updates.
                    await c.ping(0.5, make_worker(1, x=0.4, y=0.1))
                    await c.ping(0.5, make_worker(2, x=0.5, y=0.2))
                    # A new arrival cannot fold: rejected while full.
                    with pytest.raises(ServeError) as err:
                        await c.ping(0.5, make_worker(3, x=0.3, y=0.3))
                    assert err.value.code == "overloaded"
                    # An in-place refresh folds and is admitted while full.
                    await c.ping(0.75, make_worker(1, x=0.9, y=0.9))
                    await c.epoch(1.0)  # flush frees the buffer
                    # The rejected arrival left no phantom registration:
                    # worker 3 still enters as a fresh arrival.
                    await c.ping(1.0, make_worker(3, x=0.3, y=0.3))
                    await c.epoch(2.0)
                    stats = await c.stats()
                    assert stats["serve"]["admission_rejects"] == 1
                    assert stats["serve"]["updates_shed"] == 1
                    assert stats["engine"]["events"]["worker_arrive"] == 3
            return True

        assert asyncio.run(scenario())

    def test_subscription_streams_epoch_decisions(self):
        async def scenario():
            async with AssignmentServer(build_engine()) as server:
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    await c.subscribe()
                    await c.ping(0.0, make_worker(1, x=0.2, y=0.5))
                    await c.submit_task(0.0, make_task(7, x=0.25, y=0.5, end=9.0))
                    response = await c.epoch(1.0)
                    await c.drain_pushes(1)
                    push = c.pushes[0]
                    assert push["push"] == "epoch"
                    assert push["dispatch"] == response["dispatch"]
            return True

        assert asyncio.run(scenario())

    def test_expire_over_the_wire_frees_task_ids(self):
        async def scenario():
            async with AssignmentServer(build_engine()) as server:
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    await c.submit_task(0.0, make_task(7, end=1.0))
                    await c.epoch(0.5)
                    response = await c.expire(2.0)
                    assert response["expired"] == [7]
                    # The id is free again after expiry.
                    await c.submit_task(2.0, make_task(7, start=2.0, end=9.0))
            return True

        assert asyncio.run(scenario())

    def test_deadline_loop_runs_epochs_and_advances_clock(self):
        async def scenario():
            engine = build_engine()
            async with AssignmentServer(
                engine, epoch_interval=0.05, epoch_dt=1.0
            ) as server:
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    await c.ping(0.0, make_worker(1, x=0.2, y=0.5))
                    await c.submit_task(0.0, make_task(7, x=0.25, y=0.5, end=99.0))
                    await asyncio.sleep(0.4)
                    stats = await c.stats()
            assert stats["serve"]["epochs"] >= 2
            assert server.deadline_loop.next_now >= 2.0
            return True

        assert asyncio.run(scenario())

    def test_shutdown_op_stops_the_server(self):
        async def scenario():
            engine = build_engine()
            server = AssignmentServer(engine)
            await server.start()
            async with ServeClient("127.0.0.1", server.bound_port) as c:
                await c.shutdown()
            await asyncio.wait_for(server.wait_stopped(), timeout=5.0)
            return engine._closed

        assert asyncio.run(scenario())


class TestEngineDriver:
    def test_concurrent_epoch_requests_serialise_in_order(self):
        """Two racing epoch coroutines must never re-enter the engine."""

        async def scenario():
            engine = build_engine()
            metrics = ServeMetrics()
            batcher = IngestBatcher(metrics=metrics)
            driver = EngineDriver(engine, batcher, metrics)
            batcher.try_add(
                ev.WorkerArrive(time=0.0, worker=make_worker(1, x=0.2, y=0.5))
            )
            batcher.try_add(
                ev.TaskArrive(time=0.0, task=make_task(7, x=0.25, y=0.5, end=9.0))
            )
            results = await asyncio.gather(
                driver.run_epoch(1.0), driver.run_epoch(2.0)
            )
            assert [r.now for r in results] == [1.0, 2.0]
            assert engine.metrics.epochs == 2
            engine.close()
            return True

        assert asyncio.run(scenario())

    def test_deadline_tick_skips_while_epoch_runs(self):
        async def scenario():
            engine = build_engine()
            metrics = ServeMetrics()
            driver = EngineDriver(engine, IngestBatcher(metrics=metrics), metrics)
            loop = DeadlineLoop(driver, interval=10.0, epoch_dt=1.0)
            loop._epoch_running = True  # as if a solve were in flight
            assert await loop.tick() is None
            assert metrics.deadline_misses == 1
            loop._epoch_running = False
            result = await loop.tick()
            assert result is not None and metrics.epochs == 1
            engine.close()
            return True

        assert asyncio.run(scenario())


# ---------------------------------------------------------------------- #
# Kill-and-resume: the wire layer over the durable log
# ---------------------------------------------------------------------- #


def _spawn_server(tmp_path, *extra):
    """``python -m repro.serve`` with a durable log under ``tmp_path``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--durable",
            str(tmp_path / "session.db"),
            *extra,
        ],
        stdout=subprocess.PIPE,
        env=env,
    )
    line = proc.stdout.readline()
    assert line.startswith(b"READY "), line
    return proc, int(line.split()[1])


async def _drive_epochs(port, population, steps, first, last):
    """Send steps ``first..last`` (plus population at 0) and epoch each."""
    plans = []

    async def send(client, event):
        if isinstance(event, (ev.WorkerArrive, ev.WorkerUpdate)):
            await client.ping(event.time, event.worker)
        else:
            await client.submit_task(event.time, event.task)

    async with ServeClient("127.0.0.1", port) as client:
        if first == 0:
            for event in population:
                await send(client, event)
            result = await client.epoch(0.0)
            plans.append([tuple(p) for p in result["dispatch"]])
        for k in range(max(first, 1), last + 1):
            for event in steps[k - 1]:
                await send(client, event)
            result = await client.epoch(float(k))
            plans.append([tuple(p) for p in result["dispatch"]])
    return plans


@pytest.mark.churn
class TestKillAndResume:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        population, steps = build_trace(num_steps=6)

        # Uninterrupted twin: the same trace against an in-process server
        # configured exactly as the CLI default (greedy, eta 0.125).
        twin = AssignmentEngine(solver=GreedySolver(), eta=ETA, rng=7)

        async def uninterrupted():
            async with AssignmentServer(twin) as server:
                return await _drive_epochs(
                    server.bound_port, population, steps, 0, 6
                )

        expected = asyncio.run(uninterrupted())

        proc, port = _spawn_server(tmp_path, "--solver", "greedy", "--seed", "7")
        try:
            before = asyncio.run(_drive_epochs(port, population, steps, 0, 3))
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            proc2, port2 = _spawn_server(tmp_path, "--resume")
            try:
                after = asyncio.run(_drive_epochs(port2, population, steps, 4, 6))
            finally:
                proc2.kill()
                proc2.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=30)
        assert before + after == expected


# ---------------------------------------------------------------------- #
# Soak smoke: the CI-scale loadgen invariants
# ---------------------------------------------------------------------- #


class TestPercentile:
    def test_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.50) == 3.0
        assert percentile(values, 0.99) == 5.0
        assert percentile([7.0], 0.50) == 7.0
        assert percentile([], 0.5) != percentile([], 0.5)  # nan


@pytest.mark.benchsmoke
class TestSoakSmoke:
    def test_two_second_soak_loses_nothing(self):
        async def scenario():
            engine = build_engine()
            tasks, workers = make_population(num_tasks=6, num_workers=24)
            async with AssignmentServer(
                engine, epoch_interval=0.2, epoch_dt=1.0
            ) as server:
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    for worker in workers:
                        await c.ping(0.0, worker)
                    for task in tasks:
                        await c.submit_task(0.0, task)
                generator = LoadGenerator(
                    "127.0.0.1",
                    server.bound_port,
                    workers,
                    rate_hz=300.0,
                    duration_s=2.0,
                    seed=11,
                )
                report = await generator.run()
                async with ServeClient("127.0.0.1", server.bound_port) as c:
                    report.server = await c.stats()
            return report

        report = asyncio.run(scenario())
        # Zero loss: every offered event was acknowledged, none rejected.
        assert report.lost == 0
        assert report.errors == 0
        assert report.acked == report.offered
        assert report.server["serve"]["admission_rejects"] == 0
        # Latency percentiles were recorded (and are sane).
        assert report.latency_p99_ms == report.latency_p99_ms  # not nan
        assert report.latency_p50_ms <= report.latency_p95_ms
        assert report.latency_p95_ms <= report.latency_p99_ms
        assert report.sustained_rps > 0
        # The deadline loop actually planned while traffic flowed, and the
        # open-loop pings exercised the shed path.
        assert report.server["serve"]["epochs"] >= 3
        assert report.server["serve"]["updates_shed"] > 0
