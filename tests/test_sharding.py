"""Shard/no-shard differential equivalence and shard-map geometry.

The contract under test is the bit-identity acceptance bar of the
sharded engine: on the same churn event stream — arrive / leave / update
/ expire, including workers parked exactly on block boundaries and halo
crossings — a :class:`ShardedAssignmentEngine` at any shard count, on
either executor, produces exactly the single-shard engine's valid pairs
(ids *and* arrivals), assignments and objectives, epoch after epoch.
Alongside: :class:`ShardMap` partition/routing geometry, the halo
invariant guard, and the session façade's sharded mode.  The
differential classes carry the ``churn`` marker (``pytest -m churn``).
"""

import math

import numpy as np
import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.dynamic import CrowdsourcingSession
from repro.engine import AssignmentEngine, ShardMap, ShardedAssignmentEngine
from repro.engine.sharding import ShardState, _rect_distance
from repro.geometry.points import Point
from repro.index.grid import cell_coords
from tests.conftest import make_pools as shared_make_pools
from tests.conftest import make_task, make_worker

ETA = 0.125


def pair_key(pairs):
    """Canonical, rounding-sensitive view of a pair list."""
    return sorted((p.task_id, p.worker_id, p.arrival) for p in pairs)


# --------------------------------------------------------------------- #
# ShardMap geometry
# --------------------------------------------------------------------- #


class TestShardMap:
    def test_near_square_factorisation(self):
        assert (ShardMap(4, ETA).shard_rows, ShardMap(4, ETA).shard_cols) == (2, 2)
        assert (ShardMap(6, ETA).shard_rows, ShardMap(6, ETA).shard_cols) == (2, 3)
        assert (ShardMap(5, ETA).shard_rows, ShardMap(5, ETA).shard_cols) == (1, 5)
        assert (ShardMap(1, ETA).shard_rows, ShardMap(1, ETA).shard_cols) == (1, 1)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 6])
    def test_every_cell_has_exactly_one_owner(self, num_shards):
        shard_map = ShardMap(num_shards, ETA)
        counts = {shard_id: 0 for shard_id in range(num_shards)}
        for row in range(shard_map.n_cols):
            for col in range(shard_map.n_cols):
                owner = shard_map.shard_of_cell(row, col)
                assert 0 <= owner < num_shards
                counts[owner] += 1
        # Near-even block sizes: no shard owns zero cells.
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == shard_map.n_cols**2

    def test_point_routing_matches_cell_routing_on_boundaries(self):
        shard_map = ShardMap(4, ETA)
        for x, y in [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (0.5, 0.0), (0.999, 0.5)]:
            point = Point(x, y)
            row, col = cell_coords(point, ETA, shard_map.n_cols)
            assert shard_map.shard_of_point(point) == shard_map.shard_of_cell(row, col)

    def test_block_bounds_tile_the_square(self):
        shard_map = ShardMap(4, ETA)
        area = 0.0
        for shard_id in range(4):
            x0, y0, x1, y1 = shard_map.block_bounds(shard_id)
            assert x1 > x0 and y1 > y0
            area += (x1 - x0) * (y1 - y0)
        assert area == pytest.approx(1.0)

    def test_halo_none_replicates_everywhere(self):
        shard_map = ShardMap(4, ETA, halo=None)
        assert shard_map.shards_for_task(Point(0.1, 0.1)) == (0, 1, 2, 3)

    def test_zero_halo_routes_to_owner_only_in_block_interior(self):
        shard_map = ShardMap(4, ETA, halo=0.0)
        # Cell (1, 1) is strictly inside shard 0's block (cols/rows 0-3).
        assert shard_map.shards_for_task(Point(0.2, 0.2)) == (0,)

    def test_halo_owner_always_included_and_monotone(self):
        point = Point(0.45, 0.2)  # one cell left of the vertical block cut
        owner = ShardMap(4, ETA).shard_of_point(point)
        previous = set()
        for halo in (0.0, 0.05, 0.2, 0.6, None):
            shards = set(ShardMap(4, ETA, halo=halo).shards_for_task(point))
            assert owner in shards
            assert previous <= shards
            previous = shards

    def test_boundary_cell_with_small_halo_replicates_across_the_cut(self):
        shard_map = ShardMap(2, ETA, halo=0.01)  # blocks split at x = 0.5
        assert shard_map.shards_for_task(Point(0.45, 0.5)) == (0, 1)
        assert shard_map.shards_for_task(Point(0.55, 0.5)) == (0, 1)
        assert shard_map.shards_for_task(Point(0.2, 0.5)) == (0,)

    def test_halo_bound(self):
        tasks = [make_task(0, end=4.0), make_task(1, end=10.0)]
        workers = [
            make_worker(0, velocity=0.2, depart_time=2.0),
            make_worker(1, velocity=0.05, depart_time=0.0),
        ]
        assert ShardMap.halo_bound(tasks, workers) == pytest.approx(10.0 * 0.2)
        assert ShardMap.halo_bound([], []) == 0.0
        late = [make_worker(0, velocity=1.0, depart_time=20.0)]
        assert ShardMap.halo_bound(tasks, late) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardMap(0, ETA)
        with pytest.raises(ValueError):
            ShardMap(4, ETA, halo=-0.1)
        with pytest.raises(ValueError):
            ShardMap(4, 2.0)
        with pytest.raises(ValueError):
            ShardMap(8, 0.5)  # 2x2 cells cannot host a 2x4 block tiling

    def test_rect_distance(self):
        a = (0.0, 0.0, 1.0, 1.0)
        assert _rect_distance(a, (0.5, 0.5, 2.0, 2.0)) == 0.0
        assert _rect_distance(a, (2.0, 0.0, 3.0, 1.0)) == pytest.approx(1.0)
        assert _rect_distance(a, (2.0, 2.0, 3.0, 3.0)) == pytest.approx(math.sqrt(2))


# --------------------------------------------------------------------- #
# Differential churn equivalence
# --------------------------------------------------------------------- #


def make_pools(seed, num_tasks=50, num_workers=110):
    """Slow-worker pools so a sub-unit halo is provably safe."""
    return shared_make_pools(
        seed,
        num_tasks=num_tasks,
        num_workers=num_workers,
        velocity_range=(0.02, 0.1),
        expiration_range=(0.5, 1.5),
    )


class MirrorDriver:
    """One random op stream applied to a single and a sharded engine."""

    def __init__(self, seed, num_shards, backend="python", executor="sequential",
                 halo="bound", solver=None, solve_mode="full"):
        task_pool, worker_pool = make_pools(seed)
        if halo == "bound":
            halo = ShardMap.halo_bound(task_pool, worker_pool)
        make_solver = solver if solver is not None else GreedySolver
        common = dict(
            eta=ETA, rng=seed, backend=backend, solve_mode=solve_mode
        )
        self.single = AssignmentEngine(solver=make_solver(), **common)
        self.sharded = ShardedAssignmentEngine(
            solver=make_solver(),
            num_shards=num_shards,
            halo=halo,
            executor=executor,
            **common,
        )
        self.engines = (self.single, self.sharded)
        self.rng = np.random.default_rng(seed + 1)
        self.now = 0.0
        self.task_pool = task_pool[15:]
        self.worker_pool = worker_pool[30:]
        self.live_tasks = []
        self.live_workers = {}
        for task in task_pool[:15]:
            self._each("add_task", task)
            self.live_tasks.append(task.task_id)
        for worker in worker_pool[:30]:
            self._each("add_worker", worker)
            self.live_workers[worker.worker_id] = worker

    def _each(self, method, *args):
        for engine in self.engines:
            getattr(engine, method)(*args)

    def step(self):
        roll = int(self.rng.integers(0, 10))
        if roll == 0 and self.task_pool:
            task = self.task_pool.pop()
            self._each("add_task", task)
            self.live_tasks.append(task.task_id)
        elif roll == 1 and len(self.live_tasks) > 4:
            index = int(self.rng.integers(0, len(self.live_tasks)))
            self._each("withdraw_task", self.live_tasks.pop(index))
        elif roll in (2, 3) and self.worker_pool:
            worker = self.worker_pool.pop()
            self._each("add_worker", worker)
            self.live_workers[worker.worker_id] = worker
        elif roll == 4 and len(self.live_workers) > 8:
            ids = list(self.live_workers)
            worker_id = ids[int(self.rng.integers(0, len(ids)))]
            del self.live_workers[worker_id]
            self._each("remove_worker", worker_id)
        elif roll in (5, 6, 7) and self.live_workers:
            # In-place update; roll 7 jumps far enough to cross shard
            # blocks, exercising the leave + arrive migration path.
            ids = list(self.live_workers)
            worker_id = ids[int(self.rng.integers(0, len(ids)))]
            worker = self.live_workers[worker_id]
            scale = 0.01 if roll == 5 else (0.1 if roll == 6 else 0.45)
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + self.rng.normal(0.0, scale), 0.0, 1.0)),
                    float(np.clip(worker.location.y + self.rng.normal(0.0, scale), 0.0, 1.0)),
                ),
                self.now,
            )
            self.live_workers[worker_id] = moved
            self._each("update_worker", moved)
        elif roll == 8:
            self.now += float(self.rng.uniform(0.0, 0.1))
            expired_single = self.single.expire_tasks(self.now)
            expired_sharded = self.sharded.expire_tasks(self.now)
            assert expired_single == expired_sharded
            for task_id in expired_single:
                self.live_tasks.remove(task_id)
        # roll == 9: quiet step

    def assert_pairs_identical(self):
        assert pair_key(self.single.current_pairs()) == pair_key(
            self.sharded.current_pairs()
        )

    def assert_epoch_identical(self):
        a = self.single.epoch(self.now)
        b = self.sharded.epoch(self.now)
        assert a.num_pairs == b.num_pairs
        assert sorted(a.assignment.pairs()) == sorted(b.assignment.pairs())
        assert a.objective == b.objective
        assert a.mode == b.mode
        return a, b

    def close(self):
        self.sharded.close()


@pytest.mark.churn
class TestShardedDifferential:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_pairs_and_epochs_match_single_shard(self, num_shards, seed):
        driver = MirrorDriver(seed, num_shards)
        driver.assert_epoch_identical()
        for _ in range(5):
            for _ in range(15):
                driver.step()
            driver.assert_pairs_identical()
            driver.assert_epoch_identical()
        assert driver.sharded.fanouts > 0

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_backends_match_across_shards(self, backend):
        driver = MirrorDriver(7, num_shards=4, backend=backend)
        for _ in range(3):
            for _ in range(12):
                driver.step()
            driver.assert_epoch_identical()

    def test_halo_none_matches_too(self):
        driver = MirrorDriver(11, num_shards=4, halo=None)
        for _ in range(3):
            for _ in range(12):
                driver.step()
            driver.assert_epoch_identical()

    def test_sampling_solver_rng_stream_identical(self):
        driver = MirrorDriver(
            5, num_shards=4, solver=lambda: SamplingSolver(num_samples=12)
        )
        for _ in range(3):
            for _ in range(10):
                driver.step()
            driver.assert_epoch_identical()

    def test_warm_mode_matches_single_shard(self):
        driver = MirrorDriver(13, num_shards=4, solve_mode="warm")
        modes = set()
        driver.assert_epoch_identical()
        for _ in range(6):
            for _ in range(4):  # light churn so warm repair engages
                driver.step()
            a, _ = driver.assert_epoch_identical()
            modes.add(a.mode)
        assert "warm" in modes

    def test_process_executor_matches_single_shard(self):
        driver = MirrorDriver(19, num_shards=2, executor="process")
        try:
            for _ in range(2):
                for _ in range(10):
                    driver.step()
                driver.assert_epoch_identical()
        finally:
            driver.close()


@pytest.mark.churn
class TestHaloBoundary:
    """Workers parked exactly on block cuts, tasks just across them."""

    def _engines(self, halo, num_shards=2):
        single = AssignmentEngine(solver=GreedySolver(), eta=ETA, rng=1)
        sharded = ShardedAssignmentEngine(
            solver=GreedySolver(), eta=ETA, rng=1,
            num_shards=num_shards, halo=halo,
        )
        return single, sharded

    def test_halo_crossing_pairs_survive_the_cut(self):
        # 2 shards split at x = 0.5; workers sit on and beside the cut,
        # tasks just across it, within reach.
        single, sharded = self._engines(halo=0.2)
        workers = [
            make_worker(0, x=0.5, y=0.5, velocity=0.1),    # on the cut (owner: shard 1)
            make_worker(1, x=0.499, y=0.5, velocity=0.1),  # last cell of shard 0
            make_worker(2, x=0.51, y=0.5, velocity=0.1),   # first cell of shard 1
        ]
        tasks = [
            make_task(0, x=0.52, y=0.5, end=2.0),   # shard 1, reachable from 0
            make_task(1, x=0.48, y=0.5, end=2.0),   # shard 0, reachable from 1
            make_task(2, x=0.62, y=0.5, end=2.0),   # deeper into shard 1
        ]
        for engine in (single, sharded):
            for task in tasks:
                engine.add_task(task)
            for worker in workers:
                engine.add_worker(worker)
        assert pair_key(single.current_pairs()) == pair_key(sharded.current_pairs())
        # Cross-cut pairs genuinely exist (the scenario is non-trivial).
        crossing = {
            (p.task_id, p.worker_id)
            for p in single.current_pairs()
            if (p.task_id in (0, 2)) != (p.worker_id in (0, 2))
        }
        assert crossing
        a = single.epoch(0.0)
        b = sharded.epoch(0.0)
        assert sorted(a.assignment.pairs()) == sorted(b.assignment.pairs())
        assert a.objective == b.objective

    def test_boundary_worker_migration_between_shards(self):
        single, sharded = self._engines(halo=0.5)
        task = make_task(0, x=0.5, y=0.5, end=5.0)
        worker = make_worker(0, x=0.49, y=0.5, velocity=0.1)
        for engine in (single, sharded):
            engine.add_task(task)
            engine.add_worker(worker)
        assert sharded._worker_shard[0] == 0
        for x in (0.51, 0.49, 0.52):  # ping-pong across the cut
            moved = worker.moved_to(Point(x, 0.5), 0.0)
            for engine in (single, sharded):
                engine.update_worker(moved)
            assert pair_key(single.current_pairs()) == pair_key(
                sharded.current_pairs()
            )
        assert sharded._worker_shard[0] == 1

    def test_halo_guard_raises_when_reach_outgrows_halo(self):
        sharded = ShardedAssignmentEngine(
            solver=GreedySolver(), eta=ETA, num_shards=2, halo=0.05
        )
        sharded.add_task(make_task(0, end=1.0))
        sharded.add_worker(make_worker(0, velocity=0.04, depart_time=0.0))
        with pytest.raises(ValueError, match="halo"):
            sharded.add_worker(make_worker(1, velocity=1.0, depart_time=0.0))
        with pytest.raises(ValueError, match="halo"):
            sharded.add_task(make_task(1, end=50.0))
        # The guard fires *before* registration: nothing is stranded in
        # the dicts without routing state, and cleanup paths stay sound.
        assert 1 not in sharded.tasks
        assert 1 not in sharded.workers
        assert sharded.expire_tasks(100.0) == [0]


class TestShardStateAndSession:
    def test_shard_state_reports_stat_deltas(self):
        from repro.engine import TaskArrive, WorkerArrive

        state = ShardState(0, ETA)
        pairs, delta = state.collect(
            [
                TaskArrive(time=0.0, task=make_task(0, x=0.1, y=0.1, end=5.0)),
                WorkerArrive(time=0.0, worker=make_worker(0, x=0.1, y=0.1)),
            ]
        )
        assert len(pairs) == 1
        assert delta["pair_cache_misses"] == 1
        _, again = state.collect([])
        assert again["pair_cache_misses"] == 0
        assert again["pair_cache_hits"] == 1

    def test_unroutable_event_rejected(self):
        from repro.engine.events import EpochTick

        with pytest.raises(TypeError):
            ShardState(0, ETA).collect([EpochTick(time=0.0)])

    def test_sharded_session_matches_unsharded(self):
        tasks, workers = make_pools(23, num_tasks=20, num_workers=40)
        halo = ShardMap.halo_bound(tasks, workers)
        plain = CrowdsourcingSession(solver=GreedySolver(), eta=ETA, rng=2)
        sharded = CrowdsourcingSession(
            solver=GreedySolver(), eta=ETA, rng=2, num_shards=4, halo=halo
        )
        assert isinstance(sharded.engine, ShardedAssignmentEngine)
        for session in (plain, sharded):
            for task in tasks:
                session.add_task(task)
            for worker in workers:
                session.add_worker(worker)
        a = plain.reassign(0.0)
        b = sharded.reassign(0.0)
        assert sorted(a.assignment.pairs()) == sorted(b.assignment.pairs())
        assert a.objective == b.objective
        sharded.close()
        plain.close()
