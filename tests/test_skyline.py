"""Unit and property tests for the dominance/skyline substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skyline.dominance import (
    best_index_by_dominance,
    dominance_counts,
    dominates_tuple,
    skyline_indices,
)

scores = st.tuples(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)
score_lists = st.lists(scores, min_size=1, max_size=30)


def brute_force_skyline(points):
    return [
        i
        for i, p in enumerate(points)
        if not any(dominates_tuple(q, p) for j, q in enumerate(points) if j != i)
    ]


class TestDominatesTuple:
    def test_strict_both(self):
        assert dominates_tuple((2.0, 2.0), (1.0, 1.0))

    def test_one_coordinate_tie(self):
        assert dominates_tuple((2.0, 1.0), (1.0, 1.0))

    def test_equal_not_dominating(self):
        assert not dominates_tuple((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_not_dominating(self):
        assert not dominates_tuple((2.0, 0.0), (1.0, 1.0))

    def test_epsilon_ties(self):
        assert not dominates_tuple((1.0 + 1e-15, 1.0), (1.0, 1.0))


class TestSkyline:
    def test_empty(self):
        assert skyline_indices([]) == []

    def test_single(self):
        assert skyline_indices([(1.0, 1.0)]) == [0]

    def test_classic(self):
        points = [(1, 5), (2, 4), (3, 3), (2, 2), (0, 6)]
        assert skyline_indices(points) == [0, 1, 2, 4]

    def test_duplicates_all_kept(self):
        points = [(1.0, 1.0), (1.0, 1.0)]
        assert skyline_indices(points) == [0, 1]

    @given(score_lists)
    def test_matches_brute_force(self, points):
        assert skyline_indices(points) == brute_force_skyline(points)


class TestDominanceCounts:
    def test_counts(self):
        points = [(3, 3), (1, 1), (2, 2), (0, 5)]
        assert dominance_counts(points) == [2, 0, 1, 0]

    @given(score_lists)
    def test_skyline_members_have_max_count(self, points):
        counts = dominance_counts(points)
        sky = set(skyline_indices(points))
        if sky:
            best = max(range(len(points)), key=lambda i: counts[i])
            assert max(counts[i] for i in sky) == counts[best]


class TestBestIndex:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best_index_by_dominance([])

    def test_single_winner(self):
        points = [(1, 1), (3, 3), (2, 2)]
        assert best_index_by_dominance(points) == 1

    def test_tie_breaks_to_larger_tuple(self):
        points = [(1, 4), (4, 1)]
        assert best_index_by_dominance(points) == 1  # (4, 1) > (1, 4) lexicographically

    def test_deterministic_on_duplicates(self):
        points = [(2.0, 2.0), (2.0, 2.0)]
        assert best_index_by_dominance(points) == 0

    @given(score_lists)
    def test_winner_is_on_skyline(self, points):
        winner = best_index_by_dominance(points)
        assert winner in skyline_indices(points)
