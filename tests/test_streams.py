"""Tests for timed workload streams and their session replay."""

import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.datagen.streams import (
    TASK_ARRIVAL,
    WORKER_ARRIVAL,
    WORKER_DEPARTURE,
    StreamConfig,
    generate_event_stream,
    replay_stream,
)
from repro.dynamic import CrowdsourcingSession


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(horizon=0.0)
        with pytest.raises(ValueError):
            StreamConfig(task_rate=-1.0)
        with pytest.raises(ValueError):
            StreamConfig(initial_workers=-1)
        with pytest.raises(ValueError):
            StreamConfig(mean_dwell=0.0)


class TestGenerateEventStream:
    def test_sorted_by_time(self):
        events = generate_event_stream(StreamConfig(horizon=5.0), rng=1)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_events_within_horizon(self):
        config = StreamConfig(horizon=4.0)
        for event in generate_event_stream(config, rng=2):
            assert 0.0 <= event.time < config.horizon

    def test_initial_workers_at_time_zero(self):
        config = StreamConfig(initial_workers=5, worker_rate=0.0, task_rate=0.0)
        events = generate_event_stream(config, rng=3)
        arrivals = [e for e in events if e.kind == WORKER_ARRIVAL]
        assert len(arrivals) == 5
        assert all(e.time == 0.0 for e in arrivals)

    def test_departures_follow_arrivals(self):
        events = generate_event_stream(StreamConfig(horizon=6.0), rng=4)
        arrival_time = {}
        for event in events:
            if event.kind == WORKER_ARRIVAL:
                arrival_time[event.worker.worker_id] = event.time
            elif event.kind == WORKER_DEPARTURE:
                assert event.worker_id in arrival_time
                assert event.time > arrival_time[event.worker_id]

    def test_task_windows_open_at_arrival(self):
        events = generate_event_stream(StreamConfig(horizon=6.0), rng=5)
        for event in events:
            if event.kind == TASK_ARRIVAL:
                assert event.task.start == pytest.approx(event.time)
                assert event.task.end > event.task.start

    def test_unique_ids(self):
        events = generate_event_stream(StreamConfig(horizon=8.0), rng=6)
        task_ids = [e.task.task_id for e in events if e.kind == TASK_ARRIVAL]
        worker_ids = [e.worker.worker_id for e in events if e.kind == WORKER_ARRIVAL]
        assert len(task_ids) == len(set(task_ids))
        assert len(worker_ids) == len(set(worker_ids))

    def test_deterministic(self):
        a = generate_event_stream(StreamConfig(horizon=5.0), rng=7)
        b = generate_event_stream(StreamConfig(horizon=5.0), rng=7)
        assert [(e.time, e.kind) for e in a] == [(e.time, e.kind) for e in b]

    def test_zero_rates_yield_only_initial_workers(self):
        config = StreamConfig(
            horizon=5.0, task_rate=0.0, worker_rate=0.0, initial_workers=3
        )
        events = generate_event_stream(config, rng=8)
        assert all(e.kind in (WORKER_ARRIVAL, WORKER_DEPARTURE) for e in events)


class TestReplayStream:
    def test_replay_produces_outcomes(self):
        config = StreamConfig(horizon=3.0, task_rate=5.0, initial_workers=6)
        events = generate_event_stream(config, rng=9)
        session = CrowdsourcingSession(solver=SamplingSolver(num_samples=10), rng=9)
        outcomes = replay_stream(session, events, reassign_every=1.0, horizon=3.0)
        assert len(outcomes) == 4  # t = 0, 1, 2, 3
        assert session.stats.reassignments == 4

    def test_population_tracks_events(self):
        config = StreamConfig(
            horizon=2.0, task_rate=4.0, worker_rate=0.0, initial_workers=4,
            mean_dwell=100.0,
        )
        events = generate_event_stream(config, rng=10)
        session = CrowdsourcingSession(solver=GreedySolver(), rng=10)
        outcomes = replay_stream(session, events, reassign_every=1.0, horizon=2.0)
        # No departures (huge dwell), so worker count is constant.
        assert all(o.num_workers == 4 for o in outcomes)
        # Task count is cumulative arrivals minus expiries; final count
        # must match the session's live view.
        assert outcomes[-1].num_tasks == session.num_tasks

    def test_invalid_period(self):
        session = CrowdsourcingSession()
        with pytest.raises(ValueError):
            replay_stream(session, [], reassign_every=0.0)

    def test_departure_of_unknown_worker_tolerated(self):
        from repro.datagen.streams import StreamEvent

        session = CrowdsourcingSession()
        events = [StreamEvent(time=0.5, kind=WORKER_DEPARTURE, worker_id=99)]
        outcomes = replay_stream(session, events, reassign_every=1.0, horizon=1.0)
        assert len(outcomes) == 2
