"""Tests for the from-scratch utility substrates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import DisjointSet, trimmed_mean


class TestDisjointSet:
    def test_singletons(self):
        dsu = DisjointSet([1, 2, 3])
        assert dsu.groups() == [[1], [2], [3]]

    def test_union_connects(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        assert dsu.connected(1, 2)
        assert not dsu.connected(1, 3)

    def test_transitive(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        dsu.union(2, 3)
        assert dsu.connected(1, 3)

    def test_groups_partition(self):
        dsu = DisjointSet(range(6))
        dsu.union(0, 1)
        dsu.union(2, 3)
        dsu.union(3, 4)
        groups = dsu.groups()
        assert sorted(sum(groups, [])) == list(range(6))
        assert [0, 1] in groups
        assert [2, 3, 4] in groups
        assert [5] in groups

    def test_union_idempotent(self):
        dsu = DisjointSet()
        dsu.union(1, 2)
        root = dsu.find(1)
        assert dsu.union(1, 2) == root

    def test_lazy_add_on_find(self):
        dsu = DisjointSet()
        assert dsu.find("x") == "x"

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
    def test_matches_naive_connectivity(self, edges):
        dsu = DisjointSet(range(21))
        adjacency = {i: {i} for i in range(21)}
        for a, b in edges:
            dsu.union(a, b)
        # Naive closure.
        import itertools

        changed = True
        groups = [{a, b} for a, b in edges] + [{i} for i in range(21)]
        while changed:
            changed = False
            for g1, g2 in itertools.combinations(groups, 2):
                if g1 & g2 and g1 is not g2:
                    g1 |= g2
                    groups.remove(g2)
                    changed = True
                    break
        naive = {frozenset(g) for g in groups}
        ours = {frozenset(g) for g in dsu.groups()}
        assert ours == naive


class TestTrimmedMean:
    def test_trims_extremes(self):
        # Drop 1 and 100, average the rest.
        assert trimmed_mean([1.0, 5.0, 6.0, 100.0]) == pytest.approx(5.5)

    def test_small_input_falls_back_to_mean(self):
        assert trimmed_mean([4.0, 8.0]) == pytest.approx(6.0)
        assert trimmed_mean([5.0]) == 5.0

    def test_zero_trim_is_mean(self):
        assert trimmed_mean([1.0, 2.0, 3.0], trim_each_side=0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            trimmed_mean([])
        with pytest.raises(ValueError):
            trimmed_mean([1.0], trim_each_side=-1)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20))
    def test_within_min_max(self, values):
        result = trimmed_mean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9
