"""Tests for the terminal visualisation helpers."""

import pytest

from repro.algorithms import GreedySolver
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_problem
from repro.viz import render_assignment, render_instance, series_with_sparkline, sparkline
from tests.conftest import make_task, make_worker


class TestRenderInstance:
    def test_marks_tasks_and_workers(self):
        problem = RdbscProblem(
            [make_task(0, x=0.1, y=0.9)], [make_worker(0, x=0.9, y=0.1)]
        )
        art = render_instance(problem, width=10, height=10)
        assert "t" in art
        assert "w" in art
        assert "1 tasks" in art

    def test_colocated_star(self):
        problem = RdbscProblem(
            [make_task(0, x=0.5, y=0.5)], [make_worker(0, x=0.5, y=0.5, velocity=0.0)]
        )
        art = render_instance(problem, width=8, height=8)
        assert "*" in art

    def test_multiplicity_digits(self):
        tasks = [make_task(i, x=0.5, y=0.5) for i in range(3)]
        problem = RdbscProblem(tasks, [])
        art = render_instance(problem, width=6, height=6)
        assert "3" in art

    def test_overflow_plus(self):
        tasks = [make_task(i, x=0.5, y=0.5) for i in range(12)]
        problem = RdbscProblem(tasks, [])
        assert "+" in render_instance(problem, width=4, height=4)

    def test_dimensions(self):
        problem = RdbscProblem([], [])
        art = render_instance(problem, width=30, height=5)
        rows = art.splitlines()
        assert len(rows) == 6  # 5 map rows + legend
        assert all(len(row) == 30 for row in rows[:5])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            render_instance(RdbscProblem([], []), width=0)

    def test_orientation_y_up(self):
        # A task at y=0.9 must appear on an earlier (upper) row than one
        # at y=0.1.
        problem = RdbscProblem(
            [make_task(0, x=0.5, y=0.9), make_task(1, x=0.5, y=0.1)], []
        )
        rows = render_instance(problem, width=9, height=9).splitlines()[:9]
        top = next(i for i, row in enumerate(rows) if "t" in row)
        bottom = max(i for i, row in enumerate(rows) if "t" in row)
        assert top < bottom


class TestRenderAssignment:
    def test_summary_lines(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=8, num_workers=16), 3
        )
        result = GreedySolver().solve(problem, rng=3)
        art = render_assignment(problem, result.assignment, max_tasks=3)
        assert "assignment:" in art
        assert "rel=" in art

    def test_truncates_task_list(self):
        problem = generate_problem(
            ExperimentConfig.scaled_defaults(num_tasks=20, num_workers=40), 5
        )
        result = GreedySolver().solve(problem, rng=5)
        art = render_assignment(problem, result.assignment, max_tasks=2)
        if len(result.assignment.assigned_tasks()) > 2:
            assert "more tasks" in art


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_series(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_series_with_sparkline(self):
        text = series_with_sparkline("GREEDY", [1.0, 2.0], precision=1)
        assert text.startswith("GREEDY:")
        assert "[1.0 .. 2.0]" in text

    def test_series_with_sparkline_empty(self):
        assert "empty" in series_with_sparkline("X", [])
