"""Warm-start differential suite: repaired epochs vs paper-faithful solves.

Pins the ``solve_mode="warm"`` contract of
:class:`repro.engine.engine.AssignmentEngine` and the solvers in
:mod:`repro.solvers.incremental`:

* **Zero churn** — a warm epoch over an unchanged population reproduces
  the full solve bit-for-bit (GREEDY and SAMPLING, both backends).
* **GREEDY quality** — starting from the same previous plan, a warm
  epoch's objective is never Pareto-dominated by the full solve's on the
  pinned workloads (and is frequently better: the carried plan is a head
  start the cold solver does not have).
* **SAMPLING determinism** — warm epochs draw their fresh samples from
  the *same* RNG stream as a full solve (sample ``i`` is bit-identical
  for the same seed), and with ``fresh_fraction=1.0`` the warm pool is a
  superset of the full pool, so the warm winner is structurally never
  dominated.
* **Fallback boundary** — a churn delta exactly at the engine's
  ``warm_churn_threshold`` still repairs; one entity above it solves in
  full.
* **Mid-epoch churn** — warm repair stays feasible when an assigned
  worker leaves or an assigned task expires inside the epoch call.

Everything here carries the ``churn`` marker (``pytest -m churn``).
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import GreedySolver, SamplingSolver
from repro.algorithms.base import make_rng
from repro.algorithms.random_assign import RandomSolver
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.engine import AssignmentEngine
from tests.conftest import make_pools as shared_make_pools
from repro.geometry.points import Point
from repro.skyline.dominance import best_index_by_dominance, dominates_tuple
from repro.solvers.incremental import (
    PreviousPlan,
    WarmStartGreedySolver,
    WarmStartSamplingSolver,
    candidate_signatures,
    warm_variant,
)

pytestmark = pytest.mark.churn


def make_pools(seed, num_tasks=40, num_workers=90):
    """This suite's default pool sizes over the shared generator."""
    return shared_make_pools(seed, num_tasks=num_tasks, num_workers=num_workers)


def filled_engine(tasks, workers, solver, mode, backend="python", rng=1, **kwargs):
    """An engine loaded with the initial population and one epoch solved."""
    engine = AssignmentEngine(
        solver=solver, backend=backend, rng=rng, solve_mode=mode, **kwargs
    )
    for task in tasks:
        engine.add_task(task)
    for worker in workers:
        engine.add_worker(worker)
    engine.epoch(0.0)
    return engine


def small_delta(engines, tasks_spare, workers_spare, crng, live_worker_ids):
    """Apply one identical small churn delta to every engine."""
    leave = live_worker_ids[int(crng.integers(0, len(live_worker_ids)))]
    arrive = workers_spare.pop()
    new_task = tasks_spare.pop()
    for engine in engines:
        engine.remove_worker(leave)
        engine.add_worker(arrive)
        engine.add_task(new_task)
    live_worker_ids.remove(leave)
    live_worker_ids.append(arrive.worker_id)


def objective_pair(result):
    return (result.objective.min_reliability, result.objective.total_std)


# --------------------------------------------------------------------- #
# Zero churn: warm epochs reproduce full solves exactly
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_zero_churn_warm_greedy_epoch_is_bit_identical(backend):
    tasks, workers = make_pools(5)
    full = filled_engine(tasks[:30], workers[:70], GreedySolver(), "full", backend)
    warm = filled_engine(tasks[:30], workers[:70], GreedySolver(), "warm", backend)
    result_full = full.epoch(0.0)
    result_warm = warm.epoch(0.0)
    assert result_warm.mode == "warm"
    assert result_full.mode == "full"
    assert sorted(result_warm.assignment.pairs()) == sorted(
        result_full.assignment.pairs()
    )
    # The assignment is bit-identical; the accumulated E[STD] may differ in
    # the final ulp because repair replays the pairs in canonical (sorted)
    # order while the cold solve accumulates in selection order.
    assert result_warm.objective.min_reliability == pytest.approx(
        result_full.objective.min_reliability, rel=1e-12, abs=1e-12
    )
    assert result_warm.objective.total_std == pytest.approx(
        result_full.objective.total_std, rel=1e-12, abs=1e-12
    )
    assert warm.metrics.warm_solves == 1
    assert warm.metrics.full_solves == 1  # the first epoch had no plan


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_zero_churn_warm_sampling_not_dominated(backend):
    """Sampling repairs draw fewer samples, so identity is not the claim —
    but with the carried plan in the pool the warm winner must never come
    out dominated by the full solve on the same engine seed."""
    tasks, workers = make_pools(5)
    solver = WarmStartSamplingSolver(
        SamplingSolver(num_samples=12, backend=backend), fresh_fraction=1.0
    )
    full = filled_engine(tasks[:30], workers[:70], solver, "full", backend)
    warm = filled_engine(tasks[:30], workers[:70], solver, "warm", backend)
    result_full = full.epoch(0.0)
    result_warm = warm.epoch(0.0)
    assert result_warm.mode == "warm"
    assert not dominates_tuple(
        objective_pair(result_full), objective_pair(result_warm)
    )


# --------------------------------------------------------------------- #
# GREEDY: warm objective is never dominated by the full solve
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("seed", [3, 7, 11, 23])
def test_warm_greedy_objective_not_worse_than_full(backend, seed):
    """From a shared plan, one churn step: warm >= full in dominance terms."""
    tasks, workers = make_pools(seed)
    crng = np.random.default_rng(seed + 500)
    warm_wins = 0
    for rep in range(3):
        initial_tasks = tasks[:32]
        initial_workers = workers[:75]
        full = filled_engine(initial_tasks, initial_workers, GreedySolver(), "full", backend)
        warm = filled_engine(initial_tasks, initial_workers, GreedySolver(), "warm", backend)
        live = [w.worker_id for w in initial_workers]
        small_delta(
            (full, warm), [tasks[32 + rep]], [workers[75 + rep]], crng, live
        )
        result_full = full.epoch(0.0)
        result_warm = warm.epoch(0.0)
        assert result_warm.mode == "warm", rep
        full_obj = objective_pair(result_full)
        warm_obj = objective_pair(result_warm)
        assert not dominates_tuple(full_obj, warm_obj), (rep, full_obj, warm_obj)
        if dominates_tuple(warm_obj, full_obj) or warm_obj == full_obj:
            warm_wins += 1
    # The carried plan is a genuine head start, not a tie machine: at least
    # one step per workload must equal or beat the cold solve outright.
    assert warm_wins >= 1


def test_warm_greedy_feasible_and_complete():
    """Every warm pair is a valid edge; every positive-degree worker lands."""
    tasks, workers = make_pools(13)
    warm = filled_engine(tasks[:32], workers[:75], GreedySolver(), "warm")
    live = [w.worker_id for w in workers[:75]]
    crng = np.random.default_rng(99)
    small_delta((warm,), [tasks[32]], [workers[75]], crng, live)
    result = warm.epoch(0.0)
    assert result.mode == "warm"
    problem = warm.current_problem()
    for task_id, worker_id in result.assignment.pairs():
        assert problem.is_valid_pair(task_id, worker_id)
    assigned = {worker_id for _, worker_id in result.assignment.pairs()}
    for worker in problem.workers:
        if problem.degree(worker.worker_id) > 0:
            assert worker.worker_id in assigned


# --------------------------------------------------------------------- #
# SAMPLING: same RNG stream, structurally never dominated
# --------------------------------------------------------------------- #


def _plan_from_full_solve(problem, solver, seed):
    result = solver.solve(problem, rng=seed)
    return PreviousPlan(
        assignment=result.assignment.copy(),
        signatures=candidate_signatures(problem),
        population=problem.num_tasks + problem.num_workers,
    )


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_warm_sampling_draws_identical_stream(backend):
    """Warm fresh samples == the first K' samples of a full solve."""
    tasks, workers = make_pools(17)
    problem = RdbscProblem(tasks[:24], workers[:50], backend=backend)
    base = SamplingSolver(num_samples=16, backend=backend)
    plan = _plan_from_full_solve(problem, base, seed=7)
    warm = WarmStartSamplingSolver(base, fresh_fraction=0.5)
    fresh_count = warm.fresh_sample_count(problem)
    assert fresh_count == 8

    # Replay the draw by hand on an equal generator: the warm pool must be
    # the carried candidate plus exactly these samples, and the warm result
    # their dominance winner.
    samples, scores = base.draw_scored_samples(problem, make_rng(7), fresh_count)
    carried = warm.carried_candidate(problem, plan)
    from repro.core.objectives import evaluate_assignment

    carried_value = evaluate_assignment(problem, carried)
    pool_scores = [(carried_value.min_reliability, carried_value.total_std)] + scores
    expected_winner = ([carried] + samples)[best_index_by_dominance(pool_scores)]

    result = warm.warm_solve(problem, plan, rng=7)
    assert sorted(result.assignment.pairs()) == sorted(expected_winner.pairs())

    # And the full solver, on the same seed, draws a strict superset whose
    # first `fresh_count` samples are bit-identical to the warm draws.
    full_samples, _ = base.draw_scored_samples(problem, make_rng(7), 16)
    for warm_sample, full_sample in zip(samples, full_samples):
        assert sorted(warm_sample.pairs()) == sorted(full_sample.pairs())


@pytest.mark.parametrize("seed", [2, 9, 31])
def test_warm_sampling_never_dominated_by_full(seed):
    """With fresh_fraction=1.0 the warm pool is a superset: structural >=."""
    tasks, workers = make_pools(seed)
    problem = RdbscProblem(tasks[:24], workers[:50])
    base = SamplingSolver(num_samples=12)
    plan = _plan_from_full_solve(problem, base, seed=seed)
    warm = WarmStartSamplingSolver(base, fresh_fraction=1.0)
    full_result = base.solve(problem, rng=seed + 1)
    warm_result = warm.warm_solve(problem, plan, rng=seed + 1)
    full_obj = (
        full_result.objective.min_reliability,
        full_result.objective.total_std,
    )
    warm_obj = (
        warm_result.objective.min_reliability,
        warm_result.objective.total_std,
    )
    assert not dominates_tuple(full_obj, warm_obj)


def test_warm_sampling_carried_candidate_assigns_every_degree_one_worker():
    """Pinned virtual workers (degree one) always land in the carried plan."""
    tasks, workers = make_pools(21)
    problem = RdbscProblem(tasks[:20], workers[:40])
    base = SamplingSolver(num_samples=6)
    plan = _plan_from_full_solve(problem, base, seed=3)
    warm = WarmStartSamplingSolver(base)
    carried = warm.carried_candidate(problem, plan)
    for worker in problem.workers:
        if problem.degree(worker.worker_id) > 0:
            assert carried.is_assigned(worker.worker_id)


# --------------------------------------------------------------------- #
# Fallback threshold boundary
# --------------------------------------------------------------------- #


def _boundary_engine(threshold):
    tasks, workers = make_pools(41, num_tasks=45, num_workers=60)
    engine = filled_engine(
        tasks[:30],
        workers[:50],
        GreedySolver(),
        "warm",
        warm_churn_threshold=threshold,
    )
    # Population recorded with the plan: 30 tasks + 50 workers.
    assert engine._plan is not None and engine._plan.population == 80
    return engine, workers[:50]


def _jitter(worker, now=0.0):
    return worker.moved_to(
        Point(min(worker.location.x + 0.005, 1.0), worker.location.y), now
    )


def test_fallback_threshold_boundary_at_cutoff():
    """Churn exactly at threshold * population still repairs warm."""
    engine, live_workers = _boundary_engine(threshold=0.1)
    for worker in live_workers[:8]:  # 8 / 80 == 0.1 exactly
        engine.update_worker(_jitter(worker))
    result = engine.epoch(0.0)
    assert result.mode == "warm"


def test_fallback_threshold_boundary_one_above_cutoff():
    """One churned entity past the cutoff falls back to a full solve."""
    engine, live_workers = _boundary_engine(threshold=0.1)
    for worker in live_workers[:9]:  # 9 / 80 > 0.1
        engine.update_worker(_jitter(worker))
    result = engine.epoch(0.0)
    assert result.mode == "full"


def test_repeated_churn_of_one_entity_counts_once():
    """Delta sets are id-based: jittering one worker twice is one entity."""
    engine, live_workers = _boundary_engine(threshold=0.0125)  # cutoff: 1 entity
    worker = live_workers[0]
    engine.update_worker(_jitter(worker))
    engine.update_worker(_jitter(_jitter(worker)))
    assert engine.epoch(0.0).mode == "warm"


# --------------------------------------------------------------------- #
# Mid-epoch churn: leaves and expiries
# --------------------------------------------------------------------- #


def test_warm_after_assigned_worker_leaves():
    tasks, workers = make_pools(47)
    engine = filled_engine(tasks[:30], workers[:70], GreedySolver(), "warm")
    assigned = next(
        worker_id
        for _, worker_id in sorted(engine.assignment.pairs())
    )
    engine.remove_worker(assigned)
    result = engine.epoch(0.0)
    assert result.mode == "warm"
    assert all(worker_id != assigned for _, worker_id in result.assignment.pairs())
    problem = engine.current_problem()
    for task_id, worker_id in result.assignment.pairs():
        assert problem.is_valid_pair(task_id, worker_id)


def test_warm_after_assigned_task_expires_mid_epoch():
    """A task expiring inside the epoch call is repaired away, still warm."""
    tasks, workers = make_pools(53)
    doomed = dataclasses.replace(tasks[0], start=0.0, end=0.5)
    engine = filled_engine(
        [doomed] + tasks[1:30], workers[:70], GreedySolver(), "warm"
    )
    had_workers = bool(engine.workers_on(doomed.task_id))
    result = engine.epoch(1.0)  # 1.0 > end: expiry happens inside epoch()
    assert doomed.task_id in result.expired
    assert result.mode == "warm"
    assert all(task_id != doomed.task_id for task_id, _ in result.assignment.pairs())
    if had_workers:
        # Freed workers were re-inserted, not dropped from the plan.
        problem = engine.current_problem()
        assigned = {worker_id for _, worker_id in result.assignment.pairs()}
        for worker in problem.workers:
            if problem.degree(worker.worker_id) > 0:
                assert worker.worker_id in assigned


# --------------------------------------------------------------------- #
# Warm variants and unsupported solvers
# --------------------------------------------------------------------- #


def test_warm_variant_factory():
    assert isinstance(warm_variant(GreedySolver()), WarmStartGreedySolver)
    assert isinstance(warm_variant(SamplingSolver()), WarmStartSamplingSolver)
    wrapped = WarmStartGreedySolver()
    assert warm_variant(wrapped) is wrapped
    assert warm_variant(RandomSolver()) is None


def test_unsupported_solver_always_solves_full():
    tasks, workers = make_pools(61)
    engine = filled_engine(tasks[:20], workers[:40], RandomSolver(), "warm")
    result = engine.epoch(0.0)
    assert result.mode == "full"
    assert engine.metrics.warm_solves == 0


def test_invalid_solve_mode_rejected():
    with pytest.raises(ValueError):
        AssignmentEngine(solve_mode="tepid")
    with pytest.raises(ValueError):
        WarmStartSamplingSolver(fresh_fraction=0.0)


# --------------------------------------------------------------------- #
# Widening cascade cap (dense candidate chains)
# --------------------------------------------------------------------- #


def _chain_problem(length=10):
    """A dense candidate *chain*: task ``i`` reaches workers ``i, i+1``.

    Built from precomputed pairs so the candidate graph is exact: one
    connected component spanning every entity, the regime where the old
    fixpoint widening would cascade from any single churned worker to the
    whole component.
    """
    from repro.core.worker import MovingWorker
    from repro.core.problem import ValidPair

    tasks = [
        SpatialTask(i, Point(0.05 + 0.09 * i, 0.6), 0.0, 10.0) for i in range(length)
    ]
    workers = [
        MovingWorker(i, Point(0.05 + 0.09 * i, 0.4), velocity=0.2)
        for i in range(length)
    ]
    pairs = [ValidPair(i, i, 1.0 + 0.1 * i) for i in range(length)]
    pairs += [ValidPair(i, i + 1, 1.5 + 0.1 * i) for i in range(length - 1)]
    return RdbscProblem(tasks, workers, precomputed_pairs=pairs)


def test_widening_cascade_capped_on_dense_chain():
    """One churned worker re-scores O(its tasks' candidates), not the chain."""
    problem = _chain_problem()
    from repro.core.assignment import Assignment

    plan_assignment = Assignment()
    for i in range(10):
        plan_assignment.assign(i, i)
    plan = PreviousPlan(
        assignment=plan_assignment,
        signatures=candidate_signatures(problem),
        population=20,
    )
    warm = WarmStartGreedySolver()
    result = warm.warm_solve(problem, plan, forced_dirty=frozenset({5}))
    # Worker 5 is dirty; its planned task t5 is hurt, freeing t5's
    # candidates {w5, w6} — and the cascade stops there instead of
    # chasing w6's task, w7's task, ... to the end of the chain.
    assert result.stats["dirty_workers"] == 2.0
    # The repaired-and-re-scored plan still serves every worker.
    assigned = {worker_id for _, worker_id in result.assignment.pairs()}
    assert assigned == set(range(10))
    for task_id, worker_id in result.assignment.pairs():
        assert problem.is_valid_pair(task_id, worker_id)


def test_widening_still_frees_candidates_of_churn_hit_tasks():
    """The cap keeps the property the widening exists for.

    A task whose planned worker *left* releases its remaining candidates
    for re-balancing (here ``t5`` frees ``w6``) — and only them: the
    cascade does not chase ``w6``'s other task down the chain.
    """
    from repro.core.assignment import Assignment
    from repro.core.problem import ValidPair
    from repro.core.worker import MovingWorker

    length = 10
    gone = 5
    tasks = [
        SpatialTask(i, Point(0.05 + 0.09 * i, 0.6), 0.0, 10.0)
        for i in range(length)
    ]
    workers = [
        MovingWorker(i, Point(0.05 + 0.09 * i, 0.4), velocity=0.2)
        for i in range(length)
        if i != gone  # worker 5 left the system since the previous epoch
    ]
    pairs = [ValidPair(i, i, 1.0 + 0.1 * i) for i in range(length) if i != gone]
    pairs += [
        ValidPair(i, i + 1, 1.5 + 0.1 * i)
        for i in range(length - 1)
        if i + 1 != gone
    ]
    problem = RdbscProblem(tasks, workers, precomputed_pairs=pairs)
    plan_assignment = Assignment()
    for i in range(length):
        plan_assignment.assign(i, i)  # the stale plan still names worker 5
    plan = PreviousPlan(
        assignment=plan_assignment,
        signatures=candidate_signatures(problem),
        population=2 * length,
    )
    result = WarmStartGreedySolver().warm_solve(problem, plan)
    # t5 lost its worker to churn; its surviving candidate w6 was freed
    # and re-scored (dirty count 1 — the cascade stopped at w6).
    assert result.stats["dirty_workers"] == 1.0
    assert result.assignment.task_of(6) in (5, 6)
    assigned = {worker_id for _, worker_id in result.assignment.pairs()}
    assert assigned == {i for i in range(length) if i != gone}
