#!/usr/bin/env python
"""Docstring lint for the engine-era packages (pydocstyle-equivalent).

The container image has no ``pydocstyle``, so this is the dependency-free
equivalent CI runs: an ``ast`` walk over the given directories enforcing
the public-API documentation contract of ``repro.engine`` and
``repro.solvers`` — and, since the sharded era, the same contract over
``benchmarks/`` and ``examples/``, whose modules are the runnable
documentation of the recorded claims —

* every module has a module docstring (D100),
* every public class has a class docstring (D101),
* every public function, method and property has a docstring (D102/D103),

where *public* means the name has no leading underscore and is not a
dunder (``__init__`` is exempt: constructor arguments are documented in
the class docstring, as everywhere else in this repo), and an
``@overload``/abstract stub with a docstring-bearing twin is not special
cased because the codebase has none.  A function whose body is only
``...``/``pass`` under ``if TYPE_CHECKING`` does not occur either.

Usage::

    python tools/docs_lint.py src/repro/engine src/repro/solvers benchmarks examples

Run without arguments to lint the default target set above.  Exits
non-zero listing every violation as ``path:line: code name``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

Violation = Tuple[Path, int, str, str]


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return False
    return not name.startswith("_")


def _check_functions(
    path: Path, parent: ast.AST, prefix: str
) -> Iterator[Violation]:
    for node in ast.iter_child_nodes(parent):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            # A property setter never needs its own docstring: the getter
            # (which shares the name) carries the documentation.
            if any(
                isinstance(dec, ast.Attribute) and dec.attr == "setter"
                for dec in node.decorator_list
            ):
                continue
            if not ast.get_docstring(node):
                code = "D102" if prefix else "D103"
                yield (path, node.lineno, code, f"{prefix}{node.name}")
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            if not ast.get_docstring(node):
                yield (path, node.lineno, "D101", node.name)
            yield from _check_functions(path, node, f"{node.name}.")


def lint_file(path: Path) -> List[Violation]:
    """All docstring violations in one python file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: List[Violation] = []
    if not ast.get_docstring(tree):
        violations.append((path, 1, "D100", path.stem))
    violations.extend(_check_functions(path, tree, ""))
    return violations


def lint_paths(paths: List[str]) -> List[Violation]:
    """All violations under the given files or directory trees."""
    violations: List[Violation] = []
    for raw in paths:
        root = Path(raw)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            violations.extend(lint_file(file))
    return violations


#: Directories linted when the CLI is given no arguments (what CI runs).
DEFAULT_TARGETS = [
    "src/repro/engine",
    "src/repro/serve",
    "src/repro/solvers",
    "benchmarks",
    "examples",
]


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit code."""
    targets = argv or list(DEFAULT_TARGETS)
    violations = lint_paths(targets)
    for path, line, code, name in violations:
        print(f"{path}:{line}: {code} missing docstring: {name}")
    if violations:
        print(f"{len(violations)} docstring violation(s)")
        return 1
    print(f"docs lint clean: {', '.join(targets)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
